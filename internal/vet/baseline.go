package vet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// JSONDiagnostic is the machine-readable finding shape: module-relative
// slash-separated file path, 1-based position, analyzer and message. The
// same shape serves as the checked-in baseline format, so `altovet -json`
// output can be committed directly as the new baseline.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONDiagnostics converts diagnostics to the machine-readable form, sorted
// by (file, line, analyzer) — stable across runs and across worker
// schedules.
func (m *Module) JSONDiagnostics(diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, JSONDiagnostic{
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// ReadBaseline loads a baseline file. A missing file is an empty baseline —
// the gate then fails on any finding at all, which is the right default for
// a clean tree.
func ReadBaseline(path string) ([]JSONDiagnostic, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []JSONDiagnostic
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("vet: baseline %s: %w", path, err)
	}
	return out, nil
}

// WriteBaseline writes findings as an indented JSON baseline file.
func WriteBaseline(path string, diags []JSONDiagnostic) error {
	if diags == nil {
		diags = []JSONDiagnostic{}
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baselineKey identifies a finding across line-number drift: edits above a
// legacy finding must not make it read as new, so the key is everything but
// the position.
func baselineKey(d JSONDiagnostic) string {
	return d.File + "\x00" + d.Analyzer + "\x00" + d.Message
}

// CompareBaseline splits current findings into those covered by the baseline
// and those new since it, benchdiff-style: the baseline is a multiset of
// (file, analyzer, message) keys, each occurrence covering one current
// occurrence. resolved counts baseline entries that no longer fire — the
// burn-down signal that the baseline wants refreshing.
func CompareBaseline(baseline, current []JSONDiagnostic) (fresh []JSONDiagnostic, resolved int) {
	quota := map[string]int{}
	for _, d := range baseline {
		quota[baselineKey(d)]++
	}
	for _, d := range current {
		k := baselineKey(d)
		if quota[k] > 0 {
			quota[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, left := range quota {
		resolved += left
	}
	return fresh, resolved
}
