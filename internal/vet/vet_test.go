package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture materializes a one-file package in a temp dir.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestModuleDiscovery(t *testing.T) {
	mod := loadTestModule(t)
	if mod.Path != "altoos" {
		t.Errorf("module path = %q, want altoos", mod.Path)
	}
	if _, err := os.Stat(filepath.Join(mod.Root, "go.mod")); err != nil {
		t.Errorf("module root %q has no go.mod: %v", mod.Root, err)
	}
}

func TestLoadPatterns(t *testing.T) {
	mod := loadTestModule(t)
	pkgs, err := mod.Load("internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "altoos/internal/sim" {
		t.Fatalf("Load(internal/sim) = %v", pkgs)
	}
	under, err := mod.Load("internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(under) < 15 {
		t.Errorf("Load(internal/...) found only %d packages", len(under))
	}
	for _, p := range under {
		if !strings.HasPrefix(p.ImportPath, "altoos/internal/") {
			t.Errorf("pattern internal/... loaded %s", p.ImportPath)
		}
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("module walk descended into testdata: %s", p.Dir)
		}
	}
}

// TestAllowValidation: a typo in an allow directive must itself be a
// finding, never a silent no-op.
func TestAllowValidation(t *testing.T) {
	dir := writeFixture(t, `package fix

//altovet:allow nosuchanalyzer because reasons
var A = 1

//altovet:allow errdiscard
var B = 2

//altovet:allow errdiscard a real reason
var C = 3
`)
	mod := loadTestModule(t)
	pkg, err := mod.LoadDir(dir, "altoos/internal/allowfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, Analyzers())
	var msgs []string
	for _, d := range diags {
		if d.Analyzer != "allow" {
			t.Errorf("unexpected non-allow diagnostic: %s", d)
			continue
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d allow findings (%v), want 3", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "unknown analyzer nosuchanalyzer") {
		t.Errorf("first finding = %q", msgs[0])
	}
	if !strings.Contains(msgs[1], "no reason") {
		t.Errorf("second finding = %q", msgs[1])
	}
	// The well-formed directive suppresses nothing, so it is stale.
	if !strings.Contains(msgs[2], "suppresses nothing") {
		t.Errorf("third finding = %q", msgs[2])
	}
}

// TestAllowSuppression: an allow on the line above suppresses exactly that
// analyzer on exactly that line. (The wall-clock call-site ban lives in
// simtaint now.)
func TestAllowSuppression(t *testing.T) {
	dir := writeFixture(t, `package fix

import "time"

// suppressed finding:
//altovet:allow simtaint fixture needs one justified wall-clock read
var T = time.Now()

// unsuppressed finding:
var U = time.Now()
`)
	mod := loadTestModule(t)
	pkg, err := mod.LoadDir(dir, "altoos/internal/allowfix2")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, []*Analyzer{SimTaintAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly the unsuppressed one: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 10 {
		t.Errorf("surviving finding on line %d, want 10", diags[0].Pos.Line)
	}
}

// TestMultiAnalyzerAllow: one directive may scope a single reason to several
// analyzers; it is live as long as any of them uses it.
func TestMultiAnalyzerAllow(t *testing.T) {
	dir := writeFixture(t, `package fix

import "time"

//altovet:allow simtaint,errdiscard one reason shared by two analyzers
var T = time.Now()
`)
	mod := loadTestModule(t)
	pkg, err := mod.LoadDir(dir, "altoos/internal/allowfix3")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, Analyzers())
	if len(diags) != 0 {
		t.Errorf("multi-analyzer allow leaked findings: %v", diags)
	}
}

// TestBaselineCompare: the baseline is a multiset of (file, analyzer,
// message) keys — line numbers drift freely, duplicate messages are counted,
// and entries that no longer fire are reported as resolved.
func TestBaselineCompare(t *testing.T) {
	d := func(file string, line int, msg string) JSONDiagnostic {
		return JSONDiagnostic{File: file, Line: line, Analyzer: "x", Message: msg}
	}
	baseline := []JSONDiagnostic{
		d("a.go", 10, "m1"),
		d("a.go", 20, "m2"),
		d("a.go", 30, "m2"),
		d("b.go", 5, "gone"),
	}
	current := []JSONDiagnostic{
		d("a.go", 99, "m1"), // moved: still covered
		d("a.go", 21, "m2"), // one of two m2s
		d("c.go", 1, "new"), // fresh
	}
	fresh, resolved := CompareBaseline(baseline, current)
	if len(fresh) != 1 || fresh[0].File != "c.go" {
		t.Errorf("fresh = %v, want just c.go", fresh)
	}
	// One m2 and the b.go entry no longer fire.
	if resolved != 2 {
		t.Errorf("resolved = %d, want 2", resolved)
	}
}
