package vet

import (
	"go/ast"
	"go/types"
)

// ErrDiscardAnalyzer enforces error etiquette on the storage stack. Every
// error the disk, file, dir, stream and swap layers (and the altoos facade
// over them) return traces back to a label check, a full disk, or a torn
// write — precisely the conditions the paper's recovery machinery exists to
// surface. Dropping one with `_` converts detected damage back into silent
// damage.
//
// Flagged shapes, when the callee lives in a storage package:
//
//   - `v, _ := f.ReadPage(...)`  — a blank identifier swallowing an
//     error-typed result;
//   - `_ = f.Sync()`             — a whole error assigned to blank;
//   - `f.Sync()`                 — an expression statement dropping a call
//     whose results include an error;
//   - `pn, _ := f.LastPage()`    — special case: LastPage returns no error,
//     but its second result is the last page's byte length, which is
//     load-bearing in page-boundary arithmetic. Callers that want only the
//     page number call LastPN.
//   - `d.DoChain(ops, mode)`     — a dropped []error: a chain reports one
//     error per operation, and discarding the slice silences all of them.
//
// Deferred calls (`defer s.Close()`) are accepted: the deferred-cleanup
// idiom has no good channel for the error, and the stream layer's Close
// flushes are each preceded by checked writes. A justified discard takes
// `//altovet:allow errdiscard <reason>`.
var ErrDiscardAnalyzer = &Analyzer{
	Name: "errdiscard",
	Doc:  "flag _-discarded errors (and LastPage lengths) from the storage stack",
	Run:  runErrDiscard,
}

// storagePackages are the callee packages whose errors must not be dropped,
// relative to the module path ("" is the altoos facade itself).
var storagePackages = []string{
	"",
	"internal/disk",
	"internal/file",
	"internal/dir",
	"internal/stream",
	"internal/swap",
}

func runErrDiscard(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				checkAssignDiscard(pass, s)
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call)
				}
			case *ast.FuncLit:
				return true
			}
			return true
		})
	}
}

// storageCallee returns the called function if it belongs to a storage
// package (and is not the caller's own package — a layer may manage its own
// errors internally however it likes; it is the *clients* of the API whose
// etiquette is enforced... except that intra-package drops of another
// function's error are just as damaging, so same-package calls are included
// after all).
func storageCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	for _, rel := range storagePackages {
		full := pass.Module.Path
		if rel != "" {
			full += "/" + rel
		}
		if path == full {
			return fn
		}
	}
	return nil
}

// isLastPage reports whether fn is (*file.File).LastPage.
func isLastPage(pass *Pass, fn *types.Func) bool {
	return fn.Name() == "LastPage" &&
		fn.Pkg().Path() == pass.Module.Path+"/internal/file"
}

// checkAssignDiscard flags blank identifiers absorbing storage errors in
// `x, _ := call(...)` and `_ = call(...)` forms.
func checkAssignDiscard(pass *Pass, s *ast.AssignStmt) {
	// Only the single-call multi-assign and 1:1 forms matter; parallel
	// assignment of several calls cannot mix a call across positions.
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := storageCallee(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if i >= results.Len() {
			continue
		}
		rt := results.At(i).Type()
		switch {
		case isErrorType(rt):
			pass.Report(id.Pos(),
				"%s's error discarded; storage errors surface label-check failures and must be propagated (or annotate //altovet:allow errdiscard <why it cannot fail>)",
				fn.Name())
		case isErrorSliceType(rt):
			pass.Report(id.Pos(),
				"%s's chain errors discarded; a chain reports per-operation failures and callers must examine them (disk.FirstChainError at minimum)",
				fn.Name())
		case isLastPage(pass, fn) && i == 1:
			pass.Report(id.Pos(),
				"LastPage's length discarded; call LastPN when only the page number is wanted")
		}
	}
}

// checkDroppedCall flags expression statements that drop a storage call
// returning an error.
func checkDroppedCall(pass *Pass, call *ast.CallExpr) {
	fn := storageCallee(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		rt := results.At(i).Type()
		if isErrorType(rt) || isErrorSliceType(rt) {
			pass.Report(call.Pos(),
				"result of %s dropped, including its error; storage errors must be checked", fn.Name())
			return
		}
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isErrorSliceType reports whether t is []error — the shape of a chain
// result, which carries one error per operation and is just as droppable.
func isErrorSliceType(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isErrorType(s.Elem())
}
