package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Module is a loaded Go module: the unit altovet analyzes. Loading is done
// entirely with the standard library — module-internal imports are resolved
// by walking the module tree, and standard-library imports are type-checked
// from GOROOT source via go/importer's "source" compiler, so no build cache
// or export data is needed.
type Module struct {
	// Root is the directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every file loaded for this module.
	Fset *token.FileSet

	std types.Importer

	// mu guards pkgs, loading and the cached program. stdMu serializes the
	// source importer, which keeps unsynchronized state of its own; module
	// packages type-check concurrently around it.
	mu      sync.Mutex
	stdMu   sync.Mutex
	pkgs    map[string]*Package   // memoized by import path
	loading map[string]*loadState // in-flight loads, for concurrent callers

	prog      *Program
	progEpoch int // len(pkgs) the cached program was built against
}

// loadState lets concurrent importers of the same package wait for the one
// goroutine that is loading it.
type loadState struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// A Package is one parsed, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	module *Module
}

// Module returns the module the package was loaded from.
func (p *Package) Module() *Module { return p.module }

// LoadModule finds the module containing dir (walking up to go.mod) and
// prepares it for loading packages.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("vet: no go.mod at or above %s", abs)
		}
		root = parent
	}
	path, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{
		Root: root, Path: path, Fset: fset,
		pkgs:    map[string]*Package{},
		loading: map[string]*loadState{},
	}
	m.std = importer.ForCompiler(fset, "source", nil)
	return m, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("vet: no module declaration in %s", gomod)
}

// Import implements types.Importer over the module: module-internal paths
// load from the module tree; everything else falls through to the source
// importer. This is what lets fixture and production packages alike import
// altoos/internal/... during type checking.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.loadImportPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	m.stdMu.Lock()
	defer m.stdMu.Unlock()
	return m.std.Import(path)
}

// loadImportPath loads the module package with the given import path.
func (m *Module) loadImportPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(path, m.Path)
	rel = strings.TrimPrefix(rel, "/")
	return m.LoadDir(filepath.Join(m.Root, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. The path may be virtual: fixture packages under testdata/ are loaded
// with paths like "altoos/internal/fixture" so that analyzer scope rules see
// them where the fixture pretends to live. Results are memoized per path, and
// concurrent loads of the same path coalesce: the first caller loads, the
// rest wait. Go's import DAG is acyclic, so a loader waiting on one of its
// imports can never be waited on by that import in turn.
func (m *Module) LoadDir(dir, importPath string) (*Package, error) {
	m.mu.Lock()
	if pkg, ok := m.pkgs[importPath]; ok {
		m.mu.Unlock()
		return pkg, nil
	}
	if st, ok := m.loading[importPath]; ok {
		m.mu.Unlock()
		<-st.done
		return st.pkg, st.err
	}
	st := &loadState{done: make(chan struct{})}
	m.loading[importPath] = st
	m.mu.Unlock()

	pkg, err := m.loadDirUncached(dir, importPath)

	m.mu.Lock()
	if err == nil {
		m.pkgs[importPath] = pkg
	}
	delete(m.loading, importPath)
	m.mu.Unlock()
	st.pkg, st.err = pkg, err
	close(st.done)
	return pkg, err
}

// loadDirUncached does the actual parse and type-check for LoadDir.
func (m *Module) loadDirUncached(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vet: %s: %w", importPath, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("vet: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(importPath, m.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		module:     m,
	}, nil
}

// Load resolves the given package patterns. Supported shapes, mirroring the
// go tool closely enough for a repo-local linter:
//
//	./...        every package in the module
//	./dir/...    every package at or under dir
//	./dir, dir   the single package in dir
//
// With no patterns, "./..." is assumed. Directories named "testdata" and
// hidden directories are never walked.
func (m *Module) Load(patterns ...string) ([]*Package, error) {
	return m.LoadParallel(1, patterns...)
}

// LoadParallel is Load across a worker pool: the matched package directories
// are type-checked by up to workers goroutines, with shared dependencies
// coalesced through the in-flight load table. The returned slice is in the
// same deterministic order Load would produce, whatever the pool's schedule
// was. workers < 2 degrades to the sequential path.
func (m *Module) LoadParallel(workers int, patterns ...string) ([]*Package, error) {
	dirs, err := m.patternDirs(patterns)
	if err != nil {
		return nil, err
	}
	type target struct {
		dir, path string
	}
	targets := make([]target, len(dirs))
	for i, dir := range dirs {
		rel, err := filepath.Rel(m.Root, dir)
		if err != nil {
			return nil, err
		}
		path := m.Path
		if rel != "." {
			path = m.Path + "/" + filepath.ToSlash(rel)
		}
		targets[i] = target{dir, path}
	}
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 2 {
		for i, t := range targets {
			if pkgs[i], errs[i] = m.LoadDir(t.dir, t.path); errs[i] != nil {
				return nil, errs[i]
			}
		}
		return pkgs, nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pkgs[i], errs[i] = m.LoadDir(targets[i].dir, targets[i].path)
			}
		}()
	}
	for i := range targets {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// patternDirs resolves package patterns to a deduplicated directory list.
func (m *Module) patternDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(ds ...string) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := m.packageDirs(m.Root)
			if err != nil {
				return nil, err
			}
			add(ds...)
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(m.Root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			ds, err := m.packageDirs(base)
			if err != nil {
				return nil, err
			}
			add(ds...)
		default:
			add(filepath.Join(m.Root, filepath.FromSlash(pat)))
		}
	}
	return dirs, nil
}

// packageDirs returns every directory at or under base holding at least one
// non-test Go file.
func (m *Module) packageDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	uniq := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			uniq = append(uniq, d)
		}
	}
	return uniq, nil
}

// lockedTypes returns the exported-scope named struct types in pkg that
// embed a sync.Mutex or sync.RWMutex field — the "lock-holding types" the
// mutexorder analyzer reasons about. Works on type information alone, so it
// applies equally to the package under analysis and to its imports.
func lockedTypes(pkg *types.Package) []*types.Named {
	var out []*types.Named
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isMutexType(st.Field(i).Type()) {
				out = append(out, named)
				break
			}
		}
	}
	return out
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// hasLockedTypes reports whether the package contains any lock-holding type.
func hasLockedTypes(pkg *types.Package) bool { return len(lockedTypes(pkg)) > 0 }
