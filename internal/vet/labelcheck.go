package vet

import (
	"go/ast"
	"go/constant"
	"strings"
)

// LabelCheckAnalyzer enforces the paper's §3.3 discipline mechanically:
// every disk transfer gives the page's full name and checks the label on the
// way past, so that "a single error cannot cause unbounded damage". The
// disk, scavenge and fsck packages are the only layers entitled to touch
// sectors without a label check — the drive because it implements the
// check, the Scavenger and the fsck checker because reading unknown labels
// is their whole job (and fsck never writes at all).
//
// Everywhere else, a disk.Op composite literal must set Label: disk.Check.
// An op that reads or writes a value part with the label action left None
// (or, worse, rewrites the label blindly with Write) is a raw sector access
// that bypasses the protection, and is exactly the kind of code the paper
// says turns one bad hint into unbounded damage. Such code belongs behind
// the label-verifying helpers in internal/disk (ReadValue, WriteValue,
// Allocate, Free) or needs its own explicit Check.
//
// The drive's offline inspection hooks (PeekLabel) are likewise off limits
// to the operating system proper: they charge no simulated time and make no
// checks, so internal/ packages outside disk and scavenge must not call
// them. cmd/ tools and examples may — they play the role of an operator
// examining a pack offline.
var LabelCheckAnalyzer = &Analyzer{
	Name: "labelcheck",
	Doc:  "require Label: disk.Check on disk.Op literals outside internal/disk, internal/scavenge and internal/fsck",
	Run:  runLabelCheck,
}

func runLabelCheck(pass *Pass) {
	rel := pass.relPath()
	if rel == "internal/disk" || rel == "internal/scavenge" || rel == "internal/fsck" {
		return
	}
	diskPath := pass.Module.Path + "/internal/disk"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				checkOpLiteral(pass, diskPath, e)
			case *ast.CallExpr:
				checkPeek(pass, diskPath, rel, e)
			}
			return true
		})
	}
}

// checkOpLiteral verifies a disk.Op literal carries a label check.
func checkOpLiteral(pass *Pass, diskPath string, lit *ast.CompositeLit) {
	named := namedOf(pass.TypeOf(lit))
	if named == nil || named.Obj().Name() != "Op" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != diskPath {
		return
	}
	// Field -> action constant value; disk's Action constants are iota-
	// ordered None, Read, Check, Write.
	const actionCheck, actionWrite = 2, 3
	actions := map[string]int64{}
	touched := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			// Positional Op literals don't occur in this codebase; treat one
			// as unverifiable and flag it.
			pass.Report(lit.Pos(), "positional disk.Op literal cannot be verified; use field keys and set Label: disk.Check")
			return
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Header", "Label", "Value":
			tv := pass.Info.Types[kv.Value]
			if tv.Value == nil {
				pass.Report(kv.Pos(), "disk.Op %s action is not a constant; altovet cannot verify the label discipline", key.Name)
				return
			}
			v, _ := constant.Int64Val(constant.ToInt(tv.Value))
			actions[key.Name] = v
			if v != 0 {
				touched = true
			}
		}
	}
	if !touched {
		return // an empty op does nothing; the drive will reject it
	}
	if actions["Label"] != actionCheck {
		what := "left unchecked"
		if actions["Label"] == actionWrite {
			what = "rewritten blindly"
		}
		pass.Report(lit.Pos(),
			"disk.Op outside internal/disk with the label %s; every transfer must check the page label (set Label: disk.Check or use the disk ops layer)", what)
	}
}

// checkPeek flags offline drive inspection from the operating system proper.
func checkPeek(pass *Pass, diskPath, rel string, call *ast.CallExpr) {
	if !strings.HasPrefix(rel, "internal/") {
		return // cmd/ tools, examples and the facade act as the operator
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != diskPath {
		return
	}
	if fn.Name() == "PeekLabel" {
		pass.Report(call.Pos(),
			"PeekLabel makes no checks and charges no simulated time; the OS proper must pay for label-checked access")
	}
}
