package vet

import "go/ast"

// SimTaintAnalyzer guards the boundary between the two time domains. The
// simulated clock is the paper's measurement instrument: every quantitative
// claim is a statement about modelled hardware, so a sim-derived duration
// flowing into a host API (time.Sleep pacing real execution by simulated
// time) or a wall-derived duration flowing into the simulation
// (sim.Clock.Advance charging host jitter to the model) silently corrupts
// both replayability and the numbers.
//
// Two layers of defence:
//
//   - call-site bans (the successor to the original determinism time checks):
//     inside internal/ — except internal/sim, which implements the simulated
//     domain — the wall-clock-reading time functions are forbidden outright;
//   - interprocedural flow checks, module-wide including cmd/ and examples/
//     (which may legitimately read the wall clock, e.g. for host profiling,
//     but must still keep the domains apart): the taint core (taint.go)
//     tracks provenance through assignments, arithmetic and function results
//     summarized across packages, and reports any sim→host or wall→sim flow
//     at the sink call.
var SimTaintAnalyzer = &Analyzer{
	Name: "simtaint",
	Doc:  "forbid wall-clock reads in internal/ and any cross-domain flow between sim and host time",
	Run:  runSimTaint,
}

// bannedTimeFuncs are the package time functions that read or wait on the
// host's wall clock. time.Duration and the time constants remain fine — the
// simulation measures itself in time.Duration.
var bannedTimeFuncs = map[string]string{
	"Now":       "read the simulated clock with sim.Clock.Now",
	"Sleep":     "advance the simulated clock with sim.Clock.Advance",
	"After":     "model the delay on the simulated clock",
	"AfterFunc": "model the delay on the simulated clock",
	"Tick":      "model the interval on the simulated clock",
	"NewTimer":  "model the timer on the simulated clock",
	"NewTicker": "model the ticker on the simulated clock",
	"Since":     "use sim.Watch and Stopwatch.Elapsed",
	"Until":     "use sim.Clock arithmetic",
}

// hostWaitFuncs are the time functions whose argument paces real execution —
// the sinks a sim-derived duration must never reach.
var hostWaitFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runSimTaint(pass *Pass) {
	rel := pass.relPath()
	if rel == "internal/sim" {
		return
	}
	banCallSites := isInternal(rel)
	if banCallSites {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				if fix, banned := bannedTimeFuncs[obj.Name()]; banned {
					pass.Report(sel.Pos(),
						"time.%s reads the host wall clock; %s", obj.Name(), fix)
				}
				return true
			})
		}
	}
	// Flow checks run everywhere (sim excepted above): even entry points that
	// may read the wall clock must not mix the domains.
	prog := pass.Prog
	if prog == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &taintWalker{prog: prog, info: pass.Info}
			w.check(fd, func(call *ast.CallExpr) {
				checkTaintSink(pass, w, call)
			})
		}
	}
}

// checkTaintSink reports cross-domain flows at one call site.
func checkTaintSink(pass *Pass, w *taintWalker, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return
	}
	argTaint := w.exprTaint(call.Args[0])
	switch {
	case fn.Pkg().Path() == "time" && hostWaitFuncs[fn.Name()]:
		if argTaint&taintSim != 0 {
			pass.Report(call.Pos(),
				"sim-clock-derived duration flows into time.%s; simulated time must never pace host execution (model the wait with sim.Clock.Advance)", fn.Name())
		}
	case isClockAdvance(pass.Module, fn):
		if argTaint&taintWall != 0 {
			pass.Report(call.Pos(),
				"wall-clock-derived duration flows into sim.Clock.Advance; host timing must never be charged to the simulation (derive the amount from modelled quantities)")
		}
	}
}
