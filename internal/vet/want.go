package vet

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// wantRE matches expectation comments in fixture files:
//
//	x, _ := f.LastPage() // want "length discarded"
//	bad()                // want "first finding" "second finding"
//
// Each quoted string is a regexp that must match the "analyzer: message"
// text of some diagnostic reported on that line.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// CheckWant compares the diagnostics produced for pkg against the package's
// `// want` comments and returns a list of discrepancies: wants nothing
// matched, and diagnostics nothing expected. An empty result means the
// fixture behaved exactly as annotated.
func CheckWant(pkg *Package, diags []Diagnostic) []string {
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[allowKey][]*want{}
	var problems []string
	fset := pkg.module.Fset
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					pat, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						problems = append(problems, fmt.Sprintf("%s: bad want string %q", pos, m[1]))
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						problems = append(problems, fmt.Sprintf("%s: bad want regexp: %v", pos, err))
						continue
					}
					key := allowKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		key := allowKey{d.Pos.Filename, d.Pos.Line}
		text := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				problems = append(problems, fmt.Sprintf("%s:%d: want %q matched nothing", key.file, key.line, w.re))
			}
		}
	}
	return problems
}
