package vet

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DeterminismAnalyzer enforces the reproduction's replayability invariant:
// inside internal/ (except internal/sim itself), simulated time comes from
// sim.Clock and randomness from sim.Rand. Wall-clock reads and the global
// math/rand state would make experiment results depend on the host machine,
// which is exactly what the sim substrate exists to prevent — the paper's
// quantitative claims are statements about modelled hardware, not about
// whatever laptop runs the tests.
//
// cmd/ and examples/ are exempt for now: they are entry points that may
// legitimately talk to the host (and a sweep found them clean anyway); the
// scope can be widened once the analyzer has bedded in.
// Inside internal/disk, internal/pup, internal/fileserver,
// internal/crashpoint and internal/fsck the bar is higher still: the
// rotational scheduler, the transport's retransmission timers, the file
// server's session service order, the crash explorer's merged sweep report
// and the checker's violation list all promise that two runs of the same
// workload replay identically (traces and reports are compared byte for
// byte), and Go's randomized map iteration order would break that promise
// silently. Ranging over a map anywhere in those packages is therefore a
// finding; order-relevant state lives in sorted or creation-ordered slices
// (pup keeps its conns map strictly as a demux index — every sweep walks
// the order slice; fsck keys its file table by FV for lookup but walks the
// sorted file slice).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time and math/rand outside internal/sim; use sim.Clock/sim.Rand",
	Run:  runDeterminism,
}

// bannedTimeFuncs are the package time functions that read or wait on the
// host's wall clock. time.Duration and the time constants remain fine — the
// simulation measures itself in time.Duration.
var bannedTimeFuncs = map[string]string{
	"Now":       "read the simulated clock with sim.Clock.Now",
	"Sleep":     "advance the simulated clock with sim.Clock.Advance",
	"After":     "model the delay on the simulated clock",
	"AfterFunc": "model the delay on the simulated clock",
	"Tick":      "model the interval on the simulated clock",
	"NewTimer":  "model the timer on the simulated clock",
	"NewTicker": "model the ticker on the simulated clock",
	"Since":     "use sim.Watch and Stopwatch.Elapsed",
	"Until":     "use sim.Clock arithmetic",
}

func runDeterminism(pass *Pass) {
	rel := pass.relPath()
	if rel == "internal/sim" ||
		strings.HasPrefix(rel, "cmd/") ||
		strings.HasPrefix(rel, "examples/") {
		return
	}
	mapOrderMatters := rel == "internal/disk" || rel == "internal/pup" || rel == "internal/fileserver" ||
		rel == "internal/crashpoint" || rel == "internal/fsck"
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Report(imp.Pos(),
					"import of %s breaks replayability; use a seeded sim.Rand", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok && mapOrderMatters {
				if t := pass.TypeOf(rng.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Report(rng.Pos(),
							"map iteration order is randomized; this package's event order must replay byte-identically — keep order-relevant state in sorted slices and use maps only for keyed lookup")
					}
				}
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if fix, banned := bannedTimeFuncs[obj.Name()]; banned {
				pass.Report(sel.Pos(),
					"time.%s reads the host wall clock; %s", obj.Name(), fix)
			}
			return true
		})
	}
}
