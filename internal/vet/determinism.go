package vet

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DeterminismAnalyzer enforces the reproduction's replayability invariant on
// randomness and iteration order: inside internal/ (except internal/sim
// itself), randomness comes from a seeded sim.Rand — the global math/rand
// state would make experiment results depend on the host machine, which is
// exactly what the sim substrate exists to prevent. (The companion rule for
// time, once enforced here call-site by call-site, now lives in the simtaint
// analyzer, which tracks clock-domain provenance interprocedurally.)
//
// Inside the determinism-gated packages (internal/disk, internal/pup,
// internal/fileserver, internal/crashpoint, internal/fsck) the bar is higher
// still: the rotational scheduler, the transport's retransmission timers, the
// file server's session service order, the crash explorer's merged sweep
// report and the checker's violation list all promise that two runs of the
// same workload replay identically (traces and reports are compared byte for
// byte), and Go's randomized map iteration order would break that promise
// silently. Ranging over a map anywhere in those packages is therefore a
// finding; order-relevant state lives in sorted or creation-ordered slices
// (pup keeps its conns map strictly as a demux index — every sweep walks
// the order slice; fsck keys its file table by FV for lookup but walks the
// sorted file slice).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand outside internal/sim and map iteration in replay-gated packages; use sim.Rand and ordered slices",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	rel := pass.relPath()
	if rel == "internal/sim" ||
		strings.HasPrefix(rel, "cmd/") ||
		strings.HasPrefix(rel, "examples/") {
		return
	}
	mapOrderMatters := determinismGated[rel]
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Report(imp.Pos(),
					"import of %s breaks replayability; use a seeded sim.Rand", path)
			}
		}
		if !mapOrderMatters {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rng.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Report(rng.Pos(),
						"map iteration order is randomized; this package's event order must replay byte-identically — keep order-relevant state in sorted slices and use maps only for keyed lookup")
				}
			}
			return true
		})
	}
}
