package vet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// WordWidthAnalyzer guards the 16-bit word discipline. Everything the
// modelled machine stores — disk words, memory words, page numbers, disk
// addresses — is a uint16 under some name, and Go will happily truncate a
// wider value into one without a word of protest. Two shapes are flagged:
//
//  1. Narrowing a wider *arithmetic* expression straight into a 16-bit type:
//     Word(a*b), Word(x+y), Word(n<<k). The arithmetic happens at the wide
//     width and the conversion silently drops bits. Masking the expression
//     (`Word((a*b) & 0xFFFF)`) states that truncation is intended; reducing
//     operators (>>, /, %, &) at the top level are accepted as already
//     documenting a bounded result.
//
//  2. Shifting a 16-bit value by 16 or more bits — the result is always
//     zero, so the code cannot mean what it says.
//
// Converting a plain wider value (identifier, field, call result) is not
// flagged: `Word(fid)` next to `Word(fid >> 16)` is the idiom for splitting
// a 32-bit quantity into machine words, and the conversion itself is the
// documentation. The danger this analyzer hunts is arithmetic whose result
// can exceed 16 bits vanishing into a cast mid-expression.
var WordWidthAnalyzer = &Analyzer{
	Name: "wordwidth",
	Doc:  "flag silent truncation of wide arithmetic into 16-bit words and always-zero shifts",
	Run:  runWordWidth,
}

// riskyOps are the top-level operators whose result can exceed the operand
// range: the sum/difference/product/left-shift shapes.
var riskyOps = map[token.Token]bool{
	token.ADD: true,
	token.SUB: true,
	token.MUL: true,
	token.SHL: true,
}

func runWordWidth(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkNarrowing(pass, e)
			case *ast.BinaryExpr:
				checkShiftOut(pass, e)
			}
			return true
		})
	}
}

// checkNarrowing flags conversions T(expr) where T is 16 bits wide, expr is
// wider, and expr's top level is risky arithmetic.
func checkNarrowing(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if !isUint16(tv.Type) {
		return
	}
	arg := ast.Unparen(call.Args[0])
	argTV := pass.Info.Types[arg]
	if argTV.Value != nil {
		return // constants out of range are compile errors already
	}
	w := intWidth(argTV.Type)
	if w <= 16 {
		return
	}
	bin, ok := arg.(*ast.BinaryExpr)
	if !ok || !riskyOps[bin.Op] {
		return
	}
	pass.Report(call.Pos(),
		"%d-bit %s result converted to 16-bit %s may silently truncate; mask with & 0xFFFF or annotate //altovet:allow wordwidth <bound>",
		w, bin.Op, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
}

// checkShiftOut flags shifts of 16-bit values by constant amounts >= 16.
func checkShiftOut(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.SHL && bin.Op != token.SHR {
		return
	}
	xt := pass.TypeOf(bin.X)
	if xt == nil || !isUint16(xt) {
		return
	}
	// The shifted operand must be a typed 16-bit value, not an untyped
	// constant that merely defaults that way in context.
	if tv := pass.Info.Types[ast.Unparen(bin.X)]; tv.Value != nil {
		return
	}
	shift := pass.Info.Types[ast.Unparen(bin.Y)]
	if shift.Value == nil {
		return
	}
	amt, ok := constant.Uint64Val(constant.ToInt(shift.Value))
	if !ok || amt < 16 {
		return
	}
	pass.Report(bin.Pos(),
		"shifting a 16-bit word by %d bits always yields zero", amt)
}
