package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Program is the whole-program view the cross-package analyzers share: every
// package the module has loaded so far, a static call graph over them, an
// interface-to-implementation map (so a call through disk.Device reaches
// Drive's facts), and a fact table summarizing each function's externally
// visible behaviour. Facts are what make one analyzer's conclusion in one
// package ("this function charges simulated time", "this value derives from
// the sim clock", "this helper joins the goroutines it is handed") visible to
// callers in every other package.
//
// The program is rebuilt lazily whenever new packages have been loaded since
// the last build; all loaded packages share one FileSet and one type-checking
// universe, so *types.Func objects are stable keys across packages.
type Program struct {
	module *Module
	// pkgs is every loaded package, sorted by import path for determinism.
	pkgs []*Package
	// decls maps each function object to its declaration and home package.
	decls map[*types.Func]*funcDecl
	// calls is the static call graph: every function or method a declaration
	// calls directly (including calls made inside its function literals — a
	// spawned or stored closure still belongs to its lexical home for
	// may-reach purposes). Callees include interface methods.
	calls map[*types.Func][]*types.Func
	// impls maps a module interface method to the module methods that
	// implement it, so may-reach facts flow through dynamic dispatch.
	impls map[*types.Func][]*types.Func
	// facts holds the per-function summaries; see funcFacts.
	facts map[*types.Func]*funcFacts
}

// funcDecl ties a function object to its syntax and package.
type funcDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// funcFacts is the exported summary of one function, computed transitively
// over the call graph (through interface dispatch) to a fixed point.
type funcFacts struct {
	// simWork: the function may charge simulated time (reaches
	// (*sim.Clock).Advance). This is the "does real modelled work" predicate
	// tracecover keys on.
	simWork bool
	// emitPkgs: module packages containing a trace emission site (Recorder
	// Emit/EmitSpan/Add/Observe/Begin, Span End/EndWith) the function may
	// reach. tracecover requires an operation in package P to reach an
	// emission attributed to P, not merely one buried in a lower layer.
	emitPkgs map[string]bool
	// donesWG / waitsWG: the function may call (*sync.WaitGroup).Done /
	// .Wait. gospawn uses these to recognize join shapes routed through
	// helpers in other packages.
	donesWG bool
	waitsWG bool
	// spawnsUnjoined: the function contains a go statement gospawn could not
	// prove joined. Exported for callers (and the future fleet substrate's
	// own gating); the defining sites in unjoinedSpawns are where the
	// findings are reported.
	spawnsUnjoined bool
	unjoinedSpawns []token.Pos
	// taint summary bits: some result of the function derives from the
	// simulated clock / the host wall clock. Computed by the taint core
	// (taint.go) and consumed at call sites in other packages by simtaint.
	returnsSim  bool
	returnsWall bool
}

// program returns the module's whole-program view, rebuilding it if packages
// were loaded since the last build.
func (m *Module) program() *Program {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.prog != nil && m.progEpoch == len(m.pkgs) {
		return m.prog
	}
	prog := &Program{
		module: m,
		decls:  map[*types.Func]*funcDecl{},
		calls:  map[*types.Func][]*types.Func{},
		impls:  map[*types.Func][]*types.Func{},
		facts:  map[*types.Func]*funcFacts{},
	}
	for _, pkg := range m.pkgs {
		prog.pkgs = append(prog.pkgs, pkg)
	}
	sort.Slice(prog.pkgs, func(i, j int) bool {
		return prog.pkgs[i].ImportPath < prog.pkgs[j].ImportPath
	})
	prog.build()
	m.prog = prog
	m.progEpoch = len(m.pkgs)
	return prog
}

// build constructs the call graph, the interface map and the fact table.
func (p *Program) build() {
	for _, pkg := range p.pkgs {
		p.collectDecls(pkg)
	}
	p.collectImpls()
	p.seedFacts()
	p.propagateReach()
	computeTaintSummaries(p)
	p.computeSpawnFacts()
}

// collectDecls records every function declaration and its direct callees.
func (p *Program) collectDecls(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.decls[obj] = &funcDecl{decl: fd, pkg: pkg}
			var callees []*types.Func
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(pkg.Info, call); fn != nil {
					callees = append(callees, fn)
				}
				return true
			})
			p.calls[obj] = callees
		}
	}
}

// collectImpls links every module interface method to the module methods that
// implement it, so may-reach propagation crosses dynamic dispatch (the facts
// of disk.Drive.Do flow to callers of disk.Device.Do).
func (p *Program) collectImpls() {
	type iface struct {
		t       *types.Interface
		methods []*types.Func
	}
	var ifaces []iface
	var concrete []*types.Named
	for _, pkg := range p.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if it, ok := named.Underlying().(*types.Interface); ok {
				fi := iface{t: it}
				for i := 0; i < it.NumMethods(); i++ {
					fi.methods = append(fi.methods, it.Method(i))
				}
				ifaces = append(ifaces, fi)
			} else {
				concrete = append(concrete, named)
			}
		}
	}
	for _, named := range concrete {
		ptr := types.NewPointer(named)
		for _, fi := range ifaces {
			if !types.Implements(ptr, fi.t) && !types.Implements(named, fi.t) {
				continue
			}
			for _, im := range fi.methods {
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, im.Pkg(), im.Name())
				if impl, ok := obj.(*types.Func); ok {
					p.impls[im] = append(p.impls[im], impl)
				}
			}
		}
	}
}

// factsFor returns (allocating if needed) the fact record for fn.
func (p *Program) factsFor(fn *types.Func) *funcFacts {
	ff := p.facts[fn]
	if ff == nil {
		ff = &funcFacts{}
		p.facts[fn] = ff
	}
	return ff
}

// seedFacts records each function's direct behaviour: trace emissions in its
// own body, direct sim-clock charging, direct WaitGroup traffic.
func (p *Program) seedFacts() {
	for obj, fd := range p.decls {
		ff := p.factsFor(obj)
		homePath := fd.pkg.ImportPath
		for _, callee := range p.calls[obj] {
			switch {
			case isTraceEmission(p.module, callee):
				if ff.emitPkgs == nil {
					ff.emitPkgs = map[string]bool{}
				}
				ff.emitPkgs[homePath] = true
			case isClockAdvance(p.module, callee):
				ff.simWork = true
			case isWaitGroupMethod(callee, "Done"):
				ff.donesWG = true
			case isWaitGroupMethod(callee, "Wait"):
				ff.waitsWG = true
			}
		}
	}
}

// propagateReach closes the may-reach facts (simWork, emitPkgs, donesWG,
// waitsWG) over the call graph, expanding interface methods to their module
// implementations, until nothing changes.
func (p *Program) propagateReach() {
	for changed := true; changed; {
		changed = false
		for obj := range p.decls {
			ff := p.factsFor(obj)
			for _, callee := range p.calls[obj] {
				for _, target := range p.resolve(callee) {
					cf := p.facts[target]
					if cf == nil {
						continue
					}
					if cf.simWork && !ff.simWork {
						ff.simWork = true
						changed = true
					}
					if cf.donesWG && !ff.donesWG {
						ff.donesWG = true
						changed = true
					}
					if cf.waitsWG && !ff.waitsWG {
						ff.waitsWG = true
						changed = true
					}
					for pkg := range cf.emitPkgs {
						if !ff.emitPkgs[pkg] {
							if ff.emitPkgs == nil {
								ff.emitPkgs = map[string]bool{}
							}
							ff.emitPkgs[pkg] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// resolve expands a callee to the functions it may dispatch to: itself if it
// has a body in the program, plus every module implementation if it is an
// interface method.
func (p *Program) resolve(callee *types.Func) []*types.Func {
	if impls, ok := p.impls[callee]; ok {
		out := make([]*types.Func, 0, len(impls)+1)
		if _, has := p.decls[callee]; has {
			out = append(out, callee)
		}
		return append(out, impls...)
	}
	return []*types.Func{callee}
}

// isTraceEmission reports whether fn is a flight-recorder emission method:
// trace.Recorder Emit/EmitSpan/Add/Observe/Begin or trace.Span End/EndWith.
func isTraceEmission(m *Module, fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != m.Path+"/internal/trace" {
		return false
	}
	switch fn.Name() {
	case "Emit", "EmitSpan", "Add", "Observe", "Begin", "End", "EndWith":
		return true
	}
	return false
}

// isClockAdvance reports whether fn is (*sim.Clock).Advance — the single
// chokepoint through which all simulated time is charged.
func isClockAdvance(m *Module, fn *types.Func) bool {
	return fn.Name() == "Advance" &&
		fn.Pkg() != nil && fn.Pkg().Path() == m.Path+"/internal/sim"
}

// isWaitGroupMethod reports whether fn is (*sync.WaitGroup).<name>.
func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// declOf returns the declaration record for fn, or nil if fn has no body in
// the program (standard library, interface method).
func (p *Program) declOf(fn *types.Func) *funcDecl { return p.decls[fn] }

// emitsIn reports whether fn may reach a trace emission site located in the
// package with the given import path.
func (p *Program) emitsIn(fn *types.Func, importPath string) bool {
	ff := p.facts[fn]
	return ff != nil && ff.emitPkgs[importPath]
}

// determinismGated lists the module-relative packages that promise
// byte-identical replay: traces, sweep reports and violation lists from two
// runs of the same workload are compared byte for byte in the gates. The
// chanorder, globalstate and determinism map-iteration rules all key on this
// set.
var determinismGated = map[string]bool{
	"internal/disk":       true,
	"internal/pup":        true,
	"internal/fileserver": true,
	"internal/crashpoint": true,
	"internal/fsck":       true,
	"internal/scope":      true,
	"internal/fleet":      true,
	"internal/cluster":    true,
}

// tracedPackages lists the module-relative packages under the tracecover
// observability contract: their exported operations must be visible to the
// flight recorder.
var tracedPackages = map[string]bool{
	"internal/disk":       true,
	"internal/pup":        true,
	"internal/fileserver": true,
	"internal/scavenge":   true,
	"internal/crashpoint": true,
	"internal/scope":      true,
	"internal/cluster":    true,
}

// isInternal reports whether rel (a module-relative package path) lies under
// internal/.
func isInternal(rel string) bool { return strings.HasPrefix(rel, "internal/") }
