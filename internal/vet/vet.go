// Package vet is altovet's analyzer framework: a zero-dependency static
// analysis substrate built directly on the standard library's go/parser,
// go/ast and go/types (deliberately not golang.org/x/tools, so the module's
// go.mod stays dependency-free).
//
// The analyzers enforce invariants the compiler cannot see but the paper's
// reliability story depends on:
//
//   - determinism: all simulated time and randomness flows through
//     sim.Clock/sim.Rand, so every experiment is replayable from its seed;
//   - wordwidth:   machine arithmetic stays within the 16-bit Word, and any
//     narrowing of wider arithmetic is masked or documented;
//   - labelcheck:  every disk transfer built outside the disk/scavenge
//     layers checks the page label (§3.3: "a single error cannot cause
//     unbounded damage");
//   - errdiscard:  errors from the storage stack are propagated, not
//     silently dropped;
//   - mutexorder:  no code calls across package boundaries into other
//     lock-holding types while holding its own lock (a deadlock-shape
//     heuristic).
//
// A finding can be suppressed, with a mandatory reason, by an allow comment
// on the flagged line or the line above it:
//
//	//altovet:allow <analyzer> <reason>
//
// Malformed allow comments (unknown analyzer, missing reason) are themselves
// reported, so the escape hatch cannot silently rot.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way compilers do, so editors can jump.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and allow comments.
	Name string
	// Doc is a one-line description of the invariant guarded.
	Doc string
	// Run inspects the package in pass and reports findings via pass.Report.
	Run func(pass *Pass)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package's import path. Fixture packages are loaded under a
	// virtual path so scope rules (internal/ vs cmd/) apply to them too.
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Module describes the enclosing module, for path and lockedness queries.
	Module *Module
	// Prog is the whole-program view — call graph, interface map, facts —
	// shared read-only by every pass of a run. Built once per run over all
	// loaded packages.
	Prog *Program

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzers returns the full suite, in reporting order: the five per-package
// analyzers from the first generation, then the five whole-program analyzers
// that gate the fleet era.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		WordWidthAnalyzer,
		LabelCheckAnalyzer,
		ErrDiscardAnalyzer,
		MutexOrderAnalyzer,
		GoSpawnAnalyzer,
		ChanOrderAnalyzer,
		GlobalStateAnalyzer,
		SimTaintAnalyzer,
		TraceCoverAnalyzer,
	}
}

// analyzerNames is the set of valid names for allow-comment validation.
func analyzerNames() map[string]bool {
	m := map[string]bool{}
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// Stats summarizes one run for the vet-stats report: surviving and
// suppressed finding counts per analyzer.
type Stats struct {
	Findings map[string]int // surviving diagnostics, by analyzer
	Allowed  map[string]int // findings suppressed by an allow, by analyzer
}

func newStats() *Stats {
	return &Stats{Findings: map[string]int{}, Allowed: map[string]int{}}
}

func (s *Stats) merge(o *Stats) {
	for k, v := range o.Findings {
		s.Findings[k] += v
	}
	for k, v := range o.Allowed {
		s.Allowed[k] += v
	}
}

// Run applies the given analyzers to pkg, filters findings through the
// package's allow comments, and returns the surviving diagnostics sorted by
// position. Malformed allow comments are appended as findings of the
// pseudo-analyzer "allow".
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAll([]*Package{pkg}, analyzers)
	return diags
}

// RunAll applies the analyzers to every package, sharing one whole-program
// view (built over everything the module has loaded) and fanning the
// per-package passes across a worker pool. The merged output is in package
// order and position-sorted within each package — byte-identical whatever
// the pool's schedule was.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, *Stats) {
	stats := newStats()
	if len(pkgs) == 0 {
		return nil, stats
	}
	prog := pkgs[0].module.program()
	perPkg := make([][]Diagnostic, len(pkgs))
	perStats := make([]*Stats, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i], perStats[i] = runPackage(pkgs[i], analyzers, prog)
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()
	var out []Diagnostic
	for i := range pkgs {
		out = append(out, perPkg[i]...)
		stats.merge(perStats[i])
	}
	return out, stats
}

// runPackage is one package's full analysis: every analyzer, allow
// filtering, stale-allow detection, position sort.
func runPackage(pkg *Package, analyzers []*Analyzer, prog *Program) ([]Diagnostic, *Stats) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.module.Fset,
			Path:     pkg.ImportPath,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Module:   pkg.module,
			Prog:     prog,
			diags:    &diags,
		}
		a.Run(pass)
	}
	stats := newStats()
	allows, bad := collectAllows(pkg)
	diags = append(diags, bad...)
	kept := diags[:0]
	for _, d := range diags {
		if allows.allowed(d) {
			stats.Allowed[d.Analyzer]++
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, allows.stale(analyzers)...)
	for _, d := range kept {
		stats.Findings[d.Analyzer]++
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, stats
}

// inModule reports whether path names a package inside the analyzed module.
func (p *Pass) inModule(path string) bool {
	return path == p.Module.Path || strings.HasPrefix(path, p.Module.Path+"/")
}

// relPath returns the package path relative to the module root ("" for the
// root package itself), for scope rules like "anything under internal/".
func (p *Pass) relPath() string {
	if p.Path == p.Module.Path {
		return ""
	}
	return strings.TrimPrefix(p.Path, p.Module.Path+"/")
}

// calleeFunc resolves the function or method a call expression invokes,
// returning nil for conversions, calls of function-typed variables, and
// builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// isUint16 reports whether t's underlying type is exactly the 16-bit
// unsigned machine word (disk.Word, mem.Word, VDA, ... are all uint16).
func isUint16(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint16
}

// intWidth returns the bit width of an integer type, with 64 for int/uint/
// uintptr (the conservative assumption on a 64-bit host), and 0 for
// non-integers.
func intWidth(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return 0
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default:
		return 64
	}
}
