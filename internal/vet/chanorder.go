package vet

import (
	"go/ast"
	"go/types"
)

// ChanOrderAnalyzer bans scheduler-order-dependent channel patterns inside
// the determinism-gated packages. Those packages promise that two runs of the
// same workload replay byte-identically — traces, sweep reports and
// violation lists are compared byte for byte in the gates — and the Go
// scheduler gives no such promise:
//
//   - a select with two or more communicating cases resolves races by a
//     uniformly random choice, different on every run;
//   - a select with a default clause is a non-blocking poll whose outcome
//     depends on how far other goroutines happen to have progressed;
//   - len() of a channel reads the same racing quantity as a number.
//
// Deterministic alternatives are what the repo already uses: a single event
// order (the crashpoint pool's atomic task cursor with index-addressed
// results), explicit polling of creation-ordered queues (pup's conn sweep),
// or the coming fleet scheduler's event queue. A pattern that is provably
// confined to a single goroutine can take //altovet:allow chanorder <why>.
var ChanOrderAnalyzer = &Analyzer{
	Name: "chanorder",
	Doc:  "forbid scheduler-order-dependent channel patterns (multi-case select, select default, chan len) in determinism-gated packages",
	Run:  runChanOrder,
}

func runChanOrder(pass *Pass) {
	if !determinismGated[pass.relPath()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectStmt:
				checkSelect(pass, x)
			case *ast.CallExpr:
				checkChanLen(pass, x)
			}
			return true
		})
	}
}

// checkSelect counts communicating cases and default clauses.
func checkSelect(pass *Pass, sel *ast.SelectStmt) {
	comm, hasDefault := 0, false
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		} else {
			comm++
		}
	}
	switch {
	case comm >= 2:
		pass.Report(sel.Pos(),
			"select with %d communicating cases resolves by the scheduler's random choice; this package's event order must replay byte-identically — serialize through one event queue", comm)
	case hasDefault && comm >= 1:
		pass.Report(sel.Pos(),
			"select with a default clause is a non-blocking poll whose outcome depends on goroutine scheduling; drain a creation-ordered queue instead")
	}
}

// checkChanLen flags len(ch): the instantaneous buffer occupancy is a racing
// quantity.
func checkChanLen(pass *Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" || len(call.Args) != 1 {
		return
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	t := pass.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		pass.Report(call.Pos(),
			"len of a channel reads racing buffer occupancy; a replay-gated decision must not depend on scheduler progress")
	}
}
