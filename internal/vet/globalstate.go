package vet

import (
	"go/ast"
	"go/types"
)

// GlobalStateAnalyzer keeps the determinism-gated packages free of mutable
// package-level state. A package-level variable mutated at run time is shared
// by every machine in a fleet run and by every crash point in a sweep: one
// experiment's writes leak into the next, and cross-run replay breaks the
// moment iteration order, pool scheduling or experiment interleaving changes
// which write lands last. The rule: package-level vars in gated packages must
// be frozen by the end of init (error sentinels, computed lookup tables) —
// anything a running operation needs to mutate belongs in per-machine state
// (the Drive, the Endpoint, the Server), where each simulated machine owns
// its own copy.
//
// The check is whole-program: an assignment, indexed store, field store or
// ++/-- whose root resolves to a package-level variable of a gated package is
// a finding at the write site, whichever package the writer lives in. Writes
// inside func init of the var's own package are the freeze and are fine.
var GlobalStateAnalyzer = &Analyzer{
	Name: "globalstate",
	Doc:  "forbid run-time mutation of package-level vars in determinism-gated packages; freeze at init or move into per-machine state",
	Run:  runGlobalState,
}

func runGlobalState(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// init functions may freeze their own package's globals.
			isInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						checkGlobalWrite(pass, lhs, isInit)
					}
				case *ast.IncDecStmt:
					checkGlobalWrite(pass, s.X, isInit)
				}
				return true
			})
		}
	}
}

// checkGlobalWrite reports a store whose root is a gated package-level var.
func checkGlobalWrite(pass *Pass, lhs ast.Expr, inOwnInit bool) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	// Package-level means declared directly in the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return
	}
	rel := relOfPath(pass, v.Pkg().Path())
	if !determinismGated[rel] {
		return
	}
	if inOwnInit && v.Pkg().Path() == pass.Path {
		return
	}
	pass.Report(lhs.Pos(),
		"package-level var %s of determinism-gated %s mutated at run time; fleet machines and crash sweeps share package state — freeze it at init or move it into per-machine state", v.Name(), rel)
}

// rootIdent walks an assignable expression (x, x.f, x[i], *x, combinations)
// down to its root identifier, or nil for unrooted stores.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// relOfPath is relPath for an arbitrary module package path; non-module
// paths map to themselves (and never match a gated entry).
func relOfPath(pass *Pass, path string) string {
	if !pass.inModule(path) {
		return path
	}
	if path == pass.Module.Path {
		return ""
	}
	return path[len(pass.Module.Path)+1:]
}
