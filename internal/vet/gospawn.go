package vet

import (
	"go/ast"
	"go/types"
)

// GoSpawnAnalyzer enforces the fleet era's first concurrency rule: every
// goroutine spawned inside internal/ must be provably joined before its
// spawner returns. A fire-and-forget goroutine outlives the operation that
// started it, keeps mutating state while the next operation (or the next
// crash point, or the byte-identical replay) is running, and is precisely the
// shape that makes two runs of the same workload diverge under the race
// detector's radar.
//
// Accepted join shapes, recognized per go statement (the analysis runs at
// program-build time, see computeSpawnFacts, so its verdicts are
// whole-program facts other packages can consult):
//
//   - WaitGroup: the goroutine's body calls (or defers) wg.Done — directly,
//     or by calling a function whose whole-program fact says it may call
//     Done — and the spawning function reaches wg.Wait the same way
//     (crashpoint's worker pool is the model citizen);
//   - channel: the goroutine sends on or closes a channel variable that the
//     spawning function also receives from or ranges over, or the spawner
//     passes such a channel straight to the spawned function (the collector
//     pattern).
//
// The facts make both shapes compositional: a pool helper in another package
// that calls Done or Wait on a WaitGroup it was handed still counts, because
// the call-graph summary travels with it. Anything else is a finding; a
// goroutine that genuinely must outlive its spawner takes
// //altovet:allow gospawn <why>.
var GoSpawnAnalyzer = &Analyzer{
	Name: "gospawn",
	Doc:  "require every goroutine in internal/ to be joined (WaitGroup or channel shape) before its spawner returns",
	Run:  runGoSpawn,
}

func runGoSpawn(pass *Pass) {
	if !isInternal(pass.relPath()) || pass.Prog == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := pass.Prog.facts[obj]
			if ff == nil {
				continue
			}
			for _, pos := range ff.unjoinedSpawns {
				pass.Report(pos,
					"goroutine is never joined before %s returns; join it (WaitGroup Done/Wait or a channel the spawner drains) or move the work onto the caller's schedule", fd.Name.Name)
			}
		}
	}
}

// computeSpawnFacts runs the join analysis for every function in the program
// and records the verdicts as facts. It runs after reachability propagation,
// because recognizing a pool helper's Wait/Done relies on the transitive
// waitsWG/donesWG bits.
func (p *Program) computeSpawnFacts() {
	for obj, fd := range p.decls {
		var spawns []*ast.GoStmt
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				spawns = append(spawns, g)
			}
			return true
		})
		if len(spawns) == 0 {
			continue
		}
		j := &joinEvidence{prog: p, info: fd.pkg.Info}
		j.scanSpawner(fd.decl, spawns)
		ff := p.factsFor(obj)
		for _, g := range spawns {
			if !j.joined(g) {
				ff.spawnsUnjoined = true
				ff.unjoinedSpawns = append(ff.unjoinedSpawns, g.Pos())
			}
		}
	}
}

// joinEvidence gathers what the spawning function does outside its go
// statements: which WaitGroups it may Wait on, and which channel variables it
// receives from.
type joinEvidence struct {
	prog *Program
	info *types.Info
	// waits: the spawner (or a helper it calls, per whole-program facts) may
	// call WaitGroup.Wait.
	waits bool
	// recvs: channel variables the spawner receives from or ranges over,
	// outside any go statement.
	recvs map[*types.Var]bool
}

// scanSpawner walks fn's body excluding the spawned goroutines themselves.
func (j *joinEvidence) scanSpawner(fn *ast.FuncDecl, spawns []*ast.GoStmt) {
	j.recvs = map[*types.Var]bool{}
	inSpawn := func(n ast.Node) bool {
		for _, g := range spawns {
			if n.Pos() >= g.Call.Pos() && n.End() <= g.Call.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil || inSpawn(n) {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if callee := calleeFunc(j.info, x); callee != nil {
				if isWaitGroupMethod(callee, "Wait") || j.factHas(callee, func(ff *funcFacts) bool { return ff.waitsWG }) {
					j.waits = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				j.markChan(x.X)
			}
		case *ast.RangeStmt:
			if t := j.info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					j.markChan(x.X)
				}
			}
		}
		return true
	})
}

// factHas consults the whole-program facts of every function a call may
// dispatch to.
func (j *joinEvidence) factHas(fn *types.Func, pred func(*funcFacts) bool) bool {
	for _, target := range j.prog.resolve(fn) {
		if ff := j.prog.facts[target]; ff != nil && pred(ff) {
			return true
		}
	}
	return false
}

// markChan records a channel variable the spawner drains.
func (j *joinEvidence) markChan(e ast.Expr) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v, ok := j.info.Uses[id].(*types.Var); ok {
			j.recvs[v] = true
		}
	}
}

// joined decides one go statement against the gathered evidence.
func (j *joinEvidence) joined(g *ast.GoStmt) bool {
	// WaitGroup shape: goroutine side must reach Done, spawner side Wait.
	if j.waits && j.goroutineDones(g) {
		return true
	}
	// Channel shape: goroutine sends on / closes a channel the spawner
	// drains.
	return j.goroutineSignals(g)
}

// goroutineDones reports whether the goroutine body (a literal's statements,
// or the called function's whole-program fact) may call WaitGroup.Done.
func (j *joinEvidence) goroutineDones(g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(j.info, call); callee != nil {
					if isWaitGroupMethod(callee, "Done") || j.factHas(callee, func(ff *funcFacts) bool { return ff.donesWG }) {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}
	if callee := calleeFunc(j.info, g.Call); callee != nil {
		return j.factHas(callee, func(ff *funcFacts) bool { return ff.donesWG })
	}
	return false
}

// goroutineSignals reports whether the goroutine sends on or closes a channel
// variable the spawner drains, or is handed one as an argument.
func (j *joinEvidence) goroutineSignals(g *ast.GoStmt) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// go f(ch, ...): accept when a drained channel is passed straight in —
		// the callee is assumed to signal on the channel it was handed.
		for _, arg := range g.Call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, ok := j.info.Uses[id].(*types.Var); ok && j.recvs[v] {
					return true
				}
			}
		}
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if id, ok := ast.Unparen(x.Chan).(*ast.Ident); ok {
				if v, ok := j.info.Uses[id].(*types.Var); ok && j.recvs[v] {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if cid, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok {
					if v, ok := j.info.Uses[cid].(*types.Var); ok && j.recvs[v] {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}
