package vet

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//altovet:allow <analyzer>[,<analyzer>...] <reason>
//
// The comment suppresses those analyzers' findings on its own line and on the
// line immediately below it (so it can trail the flagged statement or sit
// above it). The reason is mandatory: an allow records a human judgement —
// "the error is provably impossible", "the demo tears this page on purpose"
// — and a judgement without a justification is worthless to the next reader.
// One line may scope a single reason to several analyzers (a demo page that
// is deliberately torn may need labelcheck and errdiscard together).
//
// An allow must also earn its keep: a directive whose named analyzers all ran
// and suppressed nothing is itself reported as stale, so the escape hatch
// burns down instead of accreting.
const allowPrefix = "//altovet:allow"

type allowKey struct {
	file string
	line int
}

// A directive is one parsed allow comment, with a use counter so stale
// directives can be reported.
type directive struct {
	pos   token.Position
	names []string
	used  int
}

type allows struct {
	directives []*directive
	// byAnalyzer maps analyzer -> suppressed line -> owning directive.
	byAnalyzer map[string]map[allowKey]*directive
}

func (a *allows) allowed(d Diagnostic) bool {
	lines := a.byAnalyzer[d.Analyzer]
	if lines == nil {
		return false
	}
	dir := lines[allowKey{d.Pos.Filename, d.Pos.Line}]
	if dir == nil {
		return false
	}
	dir.used++
	return true
}

// stale reports directives that suppressed nothing even though every
// analyzer they name was part of this run. Directives naming an analyzer
// that did not run are skipped — a -run subset must not condemn suppressions
// it never exercised.
func (a *allows) stale(ran []*Analyzer) []Diagnostic {
	ranNames := map[string]bool{}
	for _, an := range ran {
		ranNames[an.Name] = true
	}
	var out []Diagnostic
	for _, dir := range a.directives {
		if dir.used > 0 {
			continue
		}
		all := true
		for _, name := range dir.names {
			if !ranNames[name] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: "allow",
			Message: "allow directive for " + strings.Join(dir.names, ",") +
				" suppresses nothing; it is stale — delete it",
		})
	}
	return out
}

// collectAllows scans a package's comments for allow directives. Malformed
// directives are returned as diagnostics of the pseudo-analyzer "allow" so
// that a typo cannot silently disable checking.
func collectAllows(pkg *Package) (*allows, []Diagnostic) {
	valid := analyzerNames()
	out := &allows{byAnalyzer: map[string]map[allowKey]*directive{}}
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{
			Pos:      pkg.module.Fset.Position(pos),
			Analyzer: "allow",
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "allow directive names no analyzer")
					continue
				}
				names := strings.Split(fields[0], ",")
				unknown := ""
				for _, name := range names {
					if !valid[name] {
						unknown = name
						break
					}
				}
				if unknown != "" {
					report(c.Pos(), "allow directive names unknown analyzer "+unknown)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "allow directive for "+fields[0]+" gives no reason")
					continue
				}
				pos := pkg.module.Fset.Position(c.Pos())
				dir := &directive{pos: pos, names: names}
				out.directives = append(out.directives, dir)
				for _, name := range names {
					lines := out.byAnalyzer[name]
					if lines == nil {
						lines = map[allowKey]*directive{}
						out.byAnalyzer[name] = lines
					}
					lines[allowKey{pos.Filename, pos.Line}] = dir
					lines[allowKey{pos.Filename, pos.Line + 1}] = dir
				}
			}
		}
	}
	return out, bad
}
