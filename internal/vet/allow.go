package vet

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment:
//
//	//altovet:allow <analyzer> <reason>
//
// The comment suppresses that analyzer's findings on its own line and on the
// line immediately below it (so it can trail the flagged statement or sit
// above it). The reason is mandatory: an allow records a human judgement —
// "the error is provably impossible", "the demo tears this page on purpose"
// — and a judgement without a justification is worthless to the next reader.
const allowPrefix = "//altovet:allow"

type allowKey struct {
	file string
	line int
}

type allows struct {
	byAnalyzer map[string]map[allowKey]bool
}

func (a allows) allowed(d Diagnostic) bool {
	lines := a.byAnalyzer[d.Analyzer]
	if lines == nil {
		return false
	}
	return lines[allowKey{d.Pos.Filename, d.Pos.Line}]
}

// collectAllows scans a package's comments for allow directives. Malformed
// directives are returned as diagnostics of the pseudo-analyzer "allow" so
// that a typo cannot silently disable checking.
func collectAllows(pkg *Package) (allows, []Diagnostic) {
	valid := analyzerNames()
	out := allows{byAnalyzer: map[string]map[allowKey]bool{}}
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{
			Pos:      pkg.module.Fset.Position(pos),
			Analyzer: "allow",
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "allow directive names no analyzer")
					continue
				}
				name := fields[0]
				if !valid[name] {
					report(c.Pos(), "allow directive names unknown analyzer "+name)
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "allow directive for "+name+" gives no reason")
					continue
				}
				pos := pkg.module.Fset.Position(c.Pos())
				lines := out.byAnalyzer[name]
				if lines == nil {
					lines = map[allowKey]bool{}
					out.byAnalyzer[name] = lines
				}
				lines[allowKey{pos.Filename, pos.Line}] = true
				lines[allowKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return out, bad
}
