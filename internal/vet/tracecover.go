package vet

import (
	"go/ast"
	"go/types"
)

// TraceCoverAnalyzer is the observability lint: the flight recorder must
// never grow blind spots. An exported operation in a traced package that
// charges simulated time but emits no trace event attributed to its own
// package is invisible in the Chrome trace, the Swat stats table and the
// byte-identical-trace gate — exactly the operations a fleet postmortem
// needs. "Attributed to its own package" is the load-bearing half: pup riding
// on the ether's send/recv events still leaves the transport layer itself
// blind, so emission reached only in a lower layer does not count.
//
// The predicate is whole-program: "charges simulated time" is reachability
// of (*sim.Clock).Advance through the call graph (including interface
// dispatch, so a call through disk.Device counts what Drive does), and
// "emits" is reachability of a Recorder emission site located in the
// operation's package. Accessors and constructors never charge simulated
// time, so they pass without special cases. A deliberate exception (offline
// inspection hooks by design) takes //altovet:allow tracecover <why>.
var TraceCoverAnalyzer = &Analyzer{
	Name: "tracecover",
	Doc:  "require exported sim-time-charging operations in traced packages to emit a package-attributed trace span or counter",
	Run:  runTraceCover,
}

func runTraceCover(pass *Pass) {
	rel := pass.relPath()
	if !tracedPackages[rel] {
		return
	}
	prog := pass.Prog
	if prog == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			// String/Error implement fmt interfaces, not operations.
			if fd.Name.Name == "String" || fd.Name.Name == "Error" {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := prog.facts[obj]
			if ff == nil || !ff.simWork {
				continue
			}
			if prog.emitsIn(obj, pass.Path) {
				continue
			}
			pass.Report(fd.Name.Pos(),
				"exported %s charges simulated time but emits no %s-attributed trace span or counter; the flight recorder goes blind here — add an emission or //altovet:allow tracecover <why>",
				fd.Name.Name, rel)
		}
	}
}
