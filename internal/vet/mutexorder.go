package vet

import (
	"go/ast"
	"go/types"
)

// MutexOrderAnalyzer is a deadlock-shape heuristic. The system has a handful
// of lock-holding types — ether.Network and Station, disk.Drive, file.FS,
// the stream devices — and the concurrency discipline that keeps them
// composable is: never call across a package boundary into another
// lock-holding package while holding your own lock. ether.Send is the model
// citizen: it snapshots the recipient list under the network lock, releases
// it, and only then takes each station's lock.
//
// The analyzer walks every function body in source order, tracking a
// conservative "held" set of mutexes (x.mu.Lock() adds, x.mu.Unlock()
// removes, defer x.mu.Unlock() holds to the end of the function). While any
// mutex is held, it flags:
//
//   - method calls whose receiver is a lock-holding named type from a
//     different module package;
//   - method calls on interface types declared in such a package (the
//     disk.Device interface fronts the locked Drive);
//   - calls to exported functions of such a package that take one of its
//     locked or interface types as a parameter (disk.Allocate locks via
//     dev.Do even though Allocate itself is a plain function).
//
// internal/sim is exempt as a leaf: sim.Clock locks internally but never
// calls out, so the global order "anything → sim" cannot cycle. The
// heuristic is linear (it does not model branches precisely) and
// intentionally conservative in what it tracks rather than what it flags: a
// branch that returns while holding restores the pre-branch held set for
// the code after it.
var MutexOrderAnalyzer = &Analyzer{
	Name: "mutexorder",
	Doc:  "flag cross-package calls into lock-holding packages while a mutex is held",
	Run:  runMutexOrder,
}

// leafLockPackages never call out while locked, so holding across a call
// into them cannot participate in a cycle.
var leafLockPackages = map[string]bool{
	"internal/sim": true,
	// The flight recorder never calls out of its package while locked, so
	// any subsystem may emit events while holding its own lock.
	"internal/trace": true,
}

func runMutexOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, fn: fd, held: map[string]bool{}}
			w.stmts(fd.Body.List)
		}
	}
}

// lockWalker tracks the held-mutex set through one function body.
type lockWalker struct {
	pass *Pass
	fn   *ast.FuncDecl
	held map[string]bool
}

func (w *lockWalker) holding() bool { return len(w.held) > 0 }

// stmts walks a statement list in source order.
func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e)
		}
		for _, e := range st.Lhs {
			w.expr(e)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() pins the lock for the rest of the function; any
		// other deferred call runs at return, when locks taken here are
		// normally still held, so examine it under the current held set.
		if w.isUnlock(st.Call) {
			return // held until function end: keep the mutex in the set
		}
		w.expr(st.Call)
	case *ast.GoStmt:
		// A new goroutine starts with an empty lock set of its own.
		sub := &lockWalker{pass: w.pass, fn: w.fn, held: map[string]bool{}}
		sub.expr(st.Call)
	case *ast.BlockStmt:
		w.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.expr(st.Cond)
		w.branch(st.Body)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.branch(st.Body)
		if st.Post != nil {
			w.stmt(st.Post)
		}
	case *ast.RangeStmt:
		w.expr(st.X)
		w.branch(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(&ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(&ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(&ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.BranchStmt,
		*ast.LabeledStmt, *ast.EmptyStmt:
		// Value-only statements: walk any calls inside.
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				w.call(call)
			}
			return true
		})
	}
}

// branch walks a conditional body: lock-state changes escape it (a branch
// may take or release the lock for the code that follows), but if the
// branch ends by returning, the post-branch held set is restored, since
// that control flow never reaches the code after the branch.
func (w *lockWalker) branch(body *ast.BlockStmt) {
	before := map[string]bool{}
	for k := range w.held {
		before[k] = true
	}
	w.stmts(body.List)
	if endsInReturn(body.List) {
		w.held = before
	}
}

func endsInReturn(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto also leave the straight line
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// expr walks an expression, treating immediately-invoked closures as inline
// code and examining every call against the held set.
func (w *lockWalker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Walk the closure body with the current held set only when it
			// is invoked on the spot; a stored closure runs elsewhere.
			return false
		case *ast.CallExpr:
			if fl, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				w.stmts(fl.Body.List)
				return false
			}
			w.call(x)
		}
		return true
	})
}

// call updates the held set for Lock/Unlock and checks everything else.
func (w *lockWalker) call(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if ok {
		if key, kind := w.mutexOp(sel); key != "" {
			switch kind {
			case "Lock", "RLock":
				w.held[key] = true
			case "Unlock", "RUnlock":
				delete(w.held, key)
			}
			return
		}
	}
	if !w.holding() {
		return
	}
	w.checkForeignCall(call)
}

// isUnlock reports whether call is an Unlock/RUnlock on some mutex.
func (w *lockWalker) isUnlock(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key, kind := w.mutexOp(sel)
	return key != "" && (kind == "Unlock" || kind == "RUnlock")
}

// mutexOp recognizes m.Lock / m.Unlock / m.RLock / m.RUnlock where m is a
// sync.Mutex or sync.RWMutex-typed expression, returning a stable key for
// the mutex (its source text) and the operation name.
func (w *lockWalker) mutexOp(sel *ast.SelectorExpr) (key, kind string) {
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	recv := sel.X
	t := w.pass.TypeOf(recv)
	if t == nil || !isMutexType(t) {
		return "", ""
	}
	return types.ExprString(recv), sel.Sel.Name
}

// checkForeignCall flags a call that enters a different lock-holding module
// package while we hold a mutex.
func (w *lockWalker) checkForeignCall(call *ast.CallExpr) {
	fn := calleeFunc(w.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg()
	if pkg.Path() == w.pass.Path || !w.pass.inModule(pkg.Path()) {
		return
	}
	rel := relOf(w.pass, pkg.Path())
	if leafLockPackages[rel] {
		return
	}
	if !hasLockedTypes(pkg) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			if w.locksItself(named, pkg) {
				w.report(call, fn, pkg)
			}
		}
		return
	}
	// Package-level function: flag when it is handed one of the package's
	// locked or interface types, through which it can reach a lock.
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if named := namedOf(params.At(i).Type()); named != nil &&
			named.Obj().Pkg() == pkg && w.locksItself(named, pkg) {
			w.report(call, fn, pkg)
			return
		}
	}
}

// locksItself reports whether the named type carries a mutex, or is an
// interface declared in a package that has lock-holding implementations.
func (w *lockWalker) locksItself(named *types.Named, pkg *types.Package) bool {
	if _, ok := named.Underlying().(*types.Interface); ok {
		return true
	}
	for _, lt := range lockedTypes(pkg) {
		if lt.Obj() == named.Obj() {
			return true
		}
	}
	return false
}

func (w *lockWalker) report(call *ast.CallExpr, fn *types.Func, pkg *types.Package) {
	name := w.fn.Name.Name
	if w.fn.Recv != nil && len(w.fn.Recv.List) > 0 {
		if named := namedOf(w.pass.TypeOf(w.fn.Recv.List[0].Type)); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	w.pass.Report(call.Pos(),
		"%s calls %s.%s while holding a mutex; release before crossing into a lock-holding package (deadlock-shape, cf. ether.Send)",
		name, pkg.Name(), fn.Name())
}

// relOf is relPath for an arbitrary module package path.
func relOf(pass *Pass, path string) string {
	if path == pass.Module.Path {
		return ""
	}
	return path[len(pass.Module.Path)+1:]
}
