// Package fleet is the deterministic discrete-event scheduler that runs
// many interacting Altos on one virtual time axis. It succeeds the
// single-machine sim.Clock discipline: each machine is an actor that runs
// until it blocks on a timer, a disk rotation, or an ether delivery, then
// yields its next wake time into the engine's event queue.
//
// The engine executes in conservative lockstep. At every barrier it orders
// the pending wake entries by (sim-time, machine sequence) — the event
// queue — and opens a window [T, T+L) from the earliest wake T, where the
// lookahead L is the ether's minimum propagation latency
// (ether.MinLatency): no send starting inside the window can arrive inside
// it, so every machine whose wake falls in the window can run concurrently
// without risking a causality violation. Machines execute across a worker
// pool via the crashpoint/scope atomic-cursor pattern; because each
// activation depends only on the machine's own state and on arrivals
// certified by the window horizon (see Network.SetHorizon), a run is
// byte-identically replayable across repeated runs and across -workers
// counts.
//
// The engine also runs in coupled mode (NewCoupled): all machines share one
// clock and are stepped round-robin in creation order, one activation per
// round. That is exactly the hand-interleaved polling loop the experiments
// used to write out longhand, so existing experiments port onto the
// substrate as actors without changing their simulated-time results.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"altoos/internal/ether"
)

// never is the wake time of a machine blocked with no pending deadline:
// it runs again only when a delivery is scheduled for it (or the fleet
// drains, for daemons).
const never = time.Duration(1<<63 - 1)

// Errors.
var (
	// ErrRoundCap reports that the engine exceeded its round budget
	// without the fleet finishing.
	ErrRoundCap = errors.New("fleet: round cap exceeded")
	// ErrStalled reports a fleet where some non-daemon machine blocked
	// forever: every live machine waits on a delivery and no delivery is
	// scheduled.
	ErrStalled = errors.New("fleet: stalled")
)

// Engine schedules a set of machines over simulated time.
type Engine struct {
	coupled    bool
	lookahead  time.Duration
	workers    int
	maxRounds  int
	afterRound func()
	net        *ether.Network

	machines []*Machine
	draining bool
	horizon  time.Duration
	steps    atomic.Int64
	wg       sync.WaitGroup
}

// Option configures an Engine.
type Option func(*Engine)

// Workers sets the worker-pool width for windowed execution (default 1).
// The schedule is byte-identical for every width; workers only change how
// much of a window runs wall-clock-concurrently.
func Workers(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// Lookahead overrides the window width (default ether.MinLatency). It must
// not exceed the true minimum propagation latency of the medium the fleet
// communicates over, or causality can be violated.
func Lookahead(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.lookahead = d
		}
	}
}

// MaxRounds bounds the number of scheduling rounds (windows, or coupled
// round-robin sweeps) before the engine gives up with ErrRoundCap. The
// default is 4,000,000 — the poll budget the hand-written experiment loops
// used.
func MaxRounds(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maxRounds = n
		}
	}
}

// AfterRound installs a hook called at the end of every coupled round, the
// place legacy experiment loops made their exit decisions. Machines observe
// the outcome (typically a shared stop flag) at the top of their next
// activation.
func AfterRound(f func()) Option {
	return func(e *Engine) { e.afterRound = f }
}

// Medium hands the engine the network the fleet communicates over. The
// engine switches it into fleet mode and publishes every window's horizon
// to it, which is what gates deliveries to certified arrivals.
func Medium(n *ether.Network) Option {
	return func(e *Engine) { e.net = n }
}

// New creates a windowed (parallel lockstep) engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		lookahead: ether.MinLatency,
		workers:   1,
		maxRounds: 4_000_000,
	}
	for _, o := range opts {
		o(e)
	}
	if e.net != nil {
		e.net.SetFleetMode(true)
	}
	return e
}

// NewCoupled creates a coupled (shared-clock, round-robin) engine.
func NewCoupled(opts ...Option) *Engine {
	e := &Engine{coupled: true, workers: 1, maxRounds: 4_000_000}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Add registers a machine with the engine. Machines are stepped and
// tie-broken in creation order; creation order is part of the schedule and
// must itself be deterministic.
func (e *Engine) Add(cfg MachineConfig) *Machine {
	if !e.coupled && cfg.Clock == nil {
		panic("fleet: windowed machines require their own Clock")
	}
	var sts []*ether.Station
	if cfg.Station != nil {
		sts = append(sts, cfg.Station)
	}
	sts = append(sts, cfg.Stations...)
	m := &Machine{
		name:    cfg.Name,
		idx:     len(e.machines),
		daemon:  cfg.Daemon,
		clock:   cfg.Clock,
		sts:     sts,
		program: cfg.Program,
		wake:    cfg.StartAt,
		horizon: never,
		resume:  make(chan resumeMsg),
		yield:   make(chan struct{}),
	}
	e.machines = append(e.machines, m)
	return m
}

// Run executes the fleet to completion: every non-daemon machine's program
// has returned, daemons have been drained, or an error or budget stop
// occurred. It must be called exactly once.
func (e *Engine) Run() (err error) {
	for _, m := range e.machines {
		e.wg.Add(1)
		go func(m *Machine) {
			defer e.wg.Done()
			m.runner()
		}(m)
	}
	if e.coupled {
		err = e.loopCoupled()
	} else {
		err = e.loopWindows()
	}
	if err != nil {
		e.abortAll()
	}
	e.wg.Wait()
	return err
}

// loopCoupled steps every live machine once per round, in creation order,
// exactly as the hand-written experiment loops did.
func (e *Engine) loopCoupled() error {
	for round := 0; ; round++ {
		if round >= e.maxRounds {
			return fmt.Errorf("%w after %d rounds", ErrRoundCap, round)
		}
		live := false
		for _, m := range e.machines {
			if m.done {
				continue
			}
			live = true
			e.stepAt(m, 0)
			if m.done && m.err != nil {
				return m.err
			}
		}
		if !live {
			return nil
		}
		if e.afterRound != nil {
			e.afterRound()
		}
	}
}

// loopWindows is the conservative parallel schedule: order pending wakes,
// open a lookahead window from the earliest, run every machine inside it.
func (e *Engine) loopWindows() error {
	for round := 0; ; round++ {
		batch, live, daemonsOnly := e.pending()
		if live == 0 {
			return nil
		}
		if round >= e.maxRounds {
			return fmt.Errorf("%w after %d windows", ErrRoundCap, round)
		}
		if len(batch) == 0 {
			// Every live machine is blocked on a delivery that will never
			// come. For a fleet of pure daemons that is the normal end:
			// drain them so they can observe Draining and return.
			if daemonsOnly {
				if e.draining {
					return fmt.Errorf("fleet: daemons %s did not exit on drain", e.liveNames())
				}
				e.draining = true
				e.horizon = never
				for _, m := range e.machines {
					if !m.done {
						e.stepAt(m, m.clock.Now())
						if m.done && m.err != nil {
							return m.err
						}
					}
				}
				continue
			}
			return fmt.Errorf("%w: %s blocked forever", ErrStalled, e.liveNames())
		}
		horizon := batch[0].effWake + e.lookahead
		e.horizon = horizon
		if e.net != nil {
			e.net.SetHorizon(horizon)
		}
		cut := len(batch)
		for i, m := range batch {
			if m.effWake >= horizon {
				cut = i
				break
			}
		}
		e.runBatch(batch[:cut])
		if err := e.firstError(); err != nil {
			return err
		}
	}
}

// pending recomputes every live machine's effective wake — its yielded
// deadline, capped by the earliest delivery scheduled for its station —
// and returns the live machines as the event queue, ordered by
// (sim-time, machine sequence).
func (e *Engine) pending() (batch []*Machine, live int, daemonsOnly bool) {
	daemonsOnly = true
	for _, m := range e.machines {
		if m.done {
			continue
		}
		live++
		if !m.daemon {
			daemonsOnly = false
		}
		w := m.wake
		for _, st := range m.sts {
			if a, ok := st.EarliestArrival(); ok {
				if now := m.clock.Now(); a < now {
					a = now
				}
				if a < w {
					w = a
				}
			}
		}
		m.effWake = w
		if w < never {
			batch = append(batch, m)
		}
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].effWake != batch[j].effWake {
			return batch[i].effWake < batch[j].effWake
		}
		return batch[i].idx < batch[j].idx
	})
	return batch, live, daemonsOnly
}

// runBatch executes one window's machines. With one worker they run
// serially in event order; with more, a worker pool claims machines off an
// atomic cursor — the same slot-addressed pattern the crash explorer uses —
// and the window barrier is the pool's WaitGroup.
func (e *Engine) runBatch(batch []*Machine) {
	n := e.workers
	if n > len(batch) {
		n = len(batch)
	}
	if n <= 1 {
		for _, m := range batch {
			e.stepAt(m, m.effWake)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(batch) {
					return
				}
				e.stepAt(batch[i], batch[i].effWake)
			}
		}()
	}
	wg.Wait()
}

// stepAt resumes one parked machine at the given wake time and blocks until
// it parks again (or its program returns).
func (e *Engine) stepAt(m *Machine, wake time.Duration) {
	e.steps.Add(1)
	m.resume <- resumeMsg{wake: wake, horizon: e.horizon, draining: e.draining}
	<-m.yield
}

// Steps returns the number of machine activations the engine has performed.
// The count is a pure function of the schedule, so it is identical across
// runs and worker counts — the deterministic numerator for events/second.
func (e *Engine) Steps() int64 { return e.steps.Load() }

// firstError returns the failed machine's error, lowest creation index
// first so the choice does not depend on which worker finished when.
func (e *Engine) firstError() error {
	for _, m := range e.machines {
		if m.done && m.err != nil {
			return m.err
		}
	}
	return nil
}

// abortAll unwinds every machine that has not finished.
func (e *Engine) abortAll() {
	for _, m := range e.machines {
		if !m.done {
			m.resume <- resumeMsg{abort: true}
		}
	}
}

// liveNames lists the unfinished machines for error messages.
func (e *Engine) liveNames() string {
	var names []string
	for _, m := range e.machines {
		if !m.done {
			names = append(names, m.name)
		}
	}
	return strings.Join(names, ", ")
}
