package fleet

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"altoos/internal/ether"
	"altoos/internal/sim"
)

// ringRun builds a fleet of n machines on one medium, each sending msgs
// packets around a ring while receiving its neighbour's, with deliberately
// uneven local work so the machines' clocks drift apart. It returns one
// log line per observed event, machines concatenated in creation order —
// the byte-level artifact the determinism tests compare.
func ringRun(t *testing.T, n, msgs, workers int) string {
	t.Helper()
	net := ether.New(nil)
	logs := make([][]string, n)
	eng := New(Workers(workers), Medium(net))
	for i := 0; i < n; i++ {
		i := i
		clk := sim.NewClock()
		st, err := net.Attach(ether.Addr(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		st.SetClock(clk)
		next := ether.Addr((i+1)%n + 1)
		eng.Add(MachineConfig{
			Name:    fmt.Sprintf("m%d", i),
			Clock:   clk,
			Station: st,
			StartAt: time.Duration(i) * 100 * time.Nanosecond,
			Program: func(m *Machine) error {
				sent, got := 0, 0
				for got < msgs || sent < msgs {
					m.Sync()
					worked := false
					for {
						p, ok := st.Recv()
						if !ok {
							break
						}
						worked = true
						logs[i] = append(logs[i], fmt.Sprintf("m%d recv %d from %d at %v", i, p.Type, p.Src, clk.Now()))
						got++
					}
					if sent < msgs {
						worked = true
						if err := st.Send(ether.Packet{Dst: next, Type: ether.Word(sent)}); err != nil {
							return err
						}
						// Uneven local work, like a disk transfer: machines
						// overrun the window by machine- and step-dependent
						// amounts.
						clk.Advance(time.Duration((i+1)*(sent%7+1)) * 40 * time.Microsecond)
						sent++
					}
					if !worked {
						m.Idle()
					}
				}
				logs[i] = append(logs[i], fmt.Sprintf("m%d done at %v", i, clk.Now()))
				return nil
			},
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("fleet run (workers=%d): %v", workers, err)
	}
	var all []string
	for _, l := range logs {
		all = append(all, l...)
	}
	return strings.Join(all, "\n")
}

// TestWindowedDeterminism is the subsystem's contract: the merged event log
// of an interacting fleet is byte-identical across repeated runs and across
// worker counts.
func TestWindowedDeterminism(t *testing.T) {
	base := ringRun(t, 5, 12, 1)
	if !strings.Contains(base, "recv") {
		t.Fatalf("ring exchanged no traffic:\n%s", base)
	}
	for _, workers := range []int{1, 4, 8} {
		for run := 0; run < 2; run++ {
			got := ringRun(t, 5, 12, workers)
			if got != base {
				t.Fatalf("workers=%d run=%d diverged from workers=1 baseline:\n--- base\n%s\n--- got\n%s", workers, run, base, got)
			}
		}
	}
}

// TestWindowedWakesBlockedReceiver: a machine parked with no deadline of
// its own wakes exactly when a delivery is scheduled for it.
func TestWindowedWakesBlockedReceiver(t *testing.T) {
	net := ether.New(nil)
	ca, cb := sim.NewClock(), sim.NewClock()
	sa, _ := net.Attach(1)
	sb, _ := net.Attach(2)
	sa.SetClock(ca)
	sb.SetClock(cb)
	var gotAt time.Duration
	eng := New(Medium(net))
	eng.Add(MachineConfig{
		Name: "sender", Clock: ca, Station: sa,
		// Boot late so the receiver parks ∞ first.
		StartAt: time.Millisecond,
		Program: func(m *Machine) error {
			return sa.Send(ether.Packet{Dst: 2, Payload: []ether.Word{9}})
		},
	})
	eng.Add(MachineConfig{
		Name: "receiver", Clock: cb, Station: sb,
		Program: func(m *Machine) error {
			for {
				m.Sync()
				if _, ok := sb.Recv(); ok {
					gotAt = cb.Now()
					return nil
				}
				m.Idle()
			}
		},
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	wire := time.Duration(1+ether.HeaderWords) * ether.WireTime
	if want := time.Millisecond + wire; gotAt != want {
		t.Fatalf("receiver woke at %v, want exactly the arrival time %v", gotAt, want)
	}
}

// TestDaemonDrains: when every non-daemon has finished, the engine wakes
// the daemons with Draining set and the fleet ends cleanly.
func TestDaemonDrains(t *testing.T) {
	net := ether.New(nil)
	cs, cc := sim.NewClock(), sim.NewClock()
	ss, _ := net.Attach(1)
	sc, _ := net.Attach(2)
	ss.SetClock(cs)
	sc.SetClock(cc)
	served := 0
	eng := New(Medium(net))
	eng.Add(MachineConfig{
		Name: "server", Clock: cs, Station: ss, Daemon: true,
		Program: func(m *Machine) error {
			for !m.Draining() {
				m.Sync()
				if p, ok := ss.Recv(); ok {
					served++
					if err := ss.Send(ether.Packet{Dst: p.Src, Type: p.Type}); err != nil {
						return err
					}
					continue
				}
				m.Idle()
			}
			return nil
		},
	})
	eng.Add(MachineConfig{
		Name: "client", Clock: cc, Station: sc,
		Program: func(m *Machine) error {
			if err := sc.Send(ether.Packet{Dst: 1, Type: 77}); err != nil {
				return err
			}
			for {
				m.Sync()
				if p, ok := sc.Recv(); ok {
					if p.Type != 77 {
						return fmt.Errorf("echo type %d", p.Type)
					}
					return nil
				}
				m.Idle()
			}
		},
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 1 {
		t.Fatalf("server served %d requests, want 1", served)
	}
}

// TestStallIsAnError: a non-daemon blocked forever with no scheduled
// delivery fails the run instead of hanging it.
func TestStallIsAnError(t *testing.T) {
	eng := New()
	eng.Add(MachineConfig{
		Name: "waiter", Clock: sim.NewClock(),
		Program: func(m *Machine) error {
			m.Idle() // no deadline, no station: parks forever
			return nil
		},
	})
	err := eng.Run()
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestErrorAbortsFleet: one machine's error fails Run and unwinds the
// others without deadlock.
func TestErrorAbortsFleet(t *testing.T) {
	boom := errors.New("boom")
	eng := New()
	eng.Add(MachineConfig{
		Name: "failer", Clock: sim.NewClock(),
		Program: func(m *Machine) error { return boom },
	})
	eng.Add(MachineConfig{
		Name: "bystander", Clock: sim.NewClock(),
		Program: func(m *Machine) error {
			for {
				m.Yield()
			}
		},
	})
	if err := eng.Run(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestCoupledRoundRobin: coupled machines step once per round in creation
// order, the AfterRound hook fires between rounds, and a shared stop flag
// ends the fleet — the shape every converted experiment loop uses.
func TestCoupledRoundRobin(t *testing.T) {
	var order []string
	var stop bool
	rounds := 0
	eng := NewCoupled(AfterRound(func() {
		rounds++
		if rounds == 3 {
			stop = true
		}
	}))
	for _, name := range []string{"a", "b", "c"} {
		name := name
		eng.Add(MachineConfig{Name: name, Program: func(m *Machine) error {
			for !stop {
				order = append(order, name)
				m.Yield()
			}
			return nil
		}})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(order, ""), "abcabcabc"; got != want {
		t.Fatalf("step order %q, want %q", got, want)
	}
}

// TestCoupledRoundCap: a fleet that never finishes trips ErrRoundCap.
func TestCoupledRoundCap(t *testing.T) {
	eng := NewCoupled(MaxRounds(10))
	eng.Add(MachineConfig{Name: "spinner", Program: func(m *Machine) error {
		for {
			m.Yield()
		}
	}})
	if err := eng.Run(); !errors.Is(err, ErrRoundCap) {
		t.Fatalf("err = %v, want ErrRoundCap", err)
	}
}

// TestCoupledErrorStopsRound: an error mid-round returns immediately — the
// machines after the failer in that round are not stepped again, matching
// the legacy loops' behaviour.
func TestCoupledErrorStopsRound(t *testing.T) {
	boom := errors.New("boom")
	steps := 0
	eng := NewCoupled()
	eng.Add(MachineConfig{Name: "failer", Program: func(m *Machine) error {
		m.Yield() // round 1 ok
		return boom
	}})
	eng.Add(MachineConfig{Name: "after", Program: func(m *Machine) error {
		for {
			steps++
			m.Yield()
		}
	}})
	if err := eng.Run(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if steps != 1 {
		t.Fatalf("machine after the failer stepped %d times, want 1 (round 2 must not reach it)", steps)
	}
}
