package fleet

import (
	"time"

	"altoos/internal/ether"
	"altoos/internal/sim"
)

// MachineConfig describes one actor in the fleet.
type MachineConfig struct {
	// Name identifies the machine in errors and diagnostics.
	Name string
	// Clock is the machine's own clock. Required in windowed mode, where
	// each machine carries its local time; leave nil in coupled mode,
	// where every machine shares the rig's clock.
	Clock *sim.Clock
	// Station is the machine's ether attachment, if any. The engine reads
	// its earliest scheduled arrival at every barrier so a machine blocked
	// waiting for traffic wakes exactly when the packet arrives.
	Station *ether.Station
	// Stations lists additional attachments for machines with more than one
	// (a cluster replica serves on one station and audits peers from
	// another). The engine watches the earliest arrival across all of them.
	Stations []*ether.Station
	// Daemon marks a machine that serves others and never finishes on its
	// own (a file server). When only daemons remain, the engine sets the
	// draining flag and wakes them one last time; a daemon's program polls
	// Draining and returns.
	Daemon bool
	// StartAt is the machine's first wake time — the boot stagger.
	StartAt time.Duration
	// Program is the machine's life: called once on first wake, it runs
	// until it parks (Sync, Idle, Yield) or returns. Its error fails the
	// whole fleet.
	Program func(*Machine) error
}

// resumeMsg is what the engine hands a parked machine: the time to resume
// at, the current window horizon, and the drain/abort flags.
type resumeMsg struct {
	wake     time.Duration
	horizon  time.Duration
	draining bool
	abort    bool
}

// fleetAbort unwinds a machine's program when the engine shuts the fleet
// down after another machine's error.
type fleetAbort struct{}

// Machine is one actor: a goroutine running its program, exchanging control
// with the engine through an unbuffered channel pair, so exactly one of
// (engine, machine) runs at a time per machine and every field handoff is
// ordered by the channel operations.
type Machine struct {
	name    string
	idx     int
	daemon  bool
	clock   *sim.Clock
	sts     []*ether.Station
	program func(*Machine) error

	resume chan resumeMsg
	yield  chan struct{}

	// Engine-side view: written by the machine before it yields, read by
	// the engine after; and vice versa through resumeMsg.
	wake     time.Duration
	effWake  time.Duration
	horizon  time.Duration
	draining bool
	aborted  bool
	done     bool
	err      error
}

// Name returns the machine's name.
func (m *Machine) Name() string { return m.name }

// Clock returns the machine's clock (nil for coupled machines, which share
// the rig's).
func (m *Machine) Clock() *sim.Clock { return m.clock }

// Draining reports whether the fleet is shutting down: every non-daemon
// machine has finished and the engine has woken the daemons to exit.
func (m *Machine) Draining() bool { return m.draining }

// Yield parks the machine until the schedule comes back around: next round
// in coupled mode, or a wake at the machine's current time in windowed
// mode. It is the cooperative "give the others a turn" point.
func (m *Machine) Yield() {
	if m.clock == nil {
		m.park(0)
		return
	}
	m.park(m.clock.Now())
}

// Sync parks the machine if its local clock has reached the window horizon.
// The actor contract: call Sync before every observation of the ether. A
// machine is free to overrun the horizon on its own work (disk transfers
// routinely do), but before it looks at the wire again it must let the
// window catch up, or it would poll for packets that concurrently running
// machines may not have sent yet.
func (m *Machine) Sync() {
	if m.clock == nil {
		return
	}
	for m.clock.Now() >= m.horizon {
		m.park(m.clock.Now())
	}
}

// Idle parks the machine until something is due: the earliest deadline its
// components requested on the clock (Clock.RequestWake), or — if none — the
// next delivery scheduled for its station, which the engine watches on the
// machine's behalf. Call it when a poll did no work.
func (m *Machine) Idle() {
	if m.clock == nil {
		m.park(0)
		return
	}
	wake := never
	if d, ok := m.clock.NextWake(); ok {
		m.clock.ClearWake()
		if now := m.clock.Now(); d < now {
			d = now
		}
		wake = d
	}
	m.park(wake)
}

// park yields control to the engine with the given next wake time and
// blocks until resumed. On resume the machine's clock jumps to the granted
// wake time — which may be later than requested, when the engine woke it
// for a delivery instead.
func (m *Machine) park(wake time.Duration) {
	m.wake = wake
	m.yield <- struct{}{}
	msg := <-m.resume
	if msg.abort {
		panic(fleetAbort{})
	}
	m.apply(msg)
}

// apply installs the engine's resume message into the machine's view.
func (m *Machine) apply(msg resumeMsg) {
	m.draining = msg.draining
	m.horizon = msg.horizon
	if m.clock != nil && msg.wake < never {
		m.clock.AdvanceTo(msg.wake)
	}
}

// runner is the machine goroutine: wait for first wake, run the program,
// hand the final yield back. An abort unwinds without yielding — the
// engine stops listening to aborted machines.
func (m *Machine) runner() {
	msg := <-m.resume
	if msg.abort {
		return
	}
	m.apply(msg)
	err := m.invoke()
	if m.aborted {
		return
	}
	m.err = err
	m.done = true
	m.yield <- struct{}{}
}

// invoke runs the program, converting an engine abort into a quiet exit.
func (m *Machine) invoke() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(fleetAbort); ok {
				m.aborted = true
				return
			}
			panic(r)
		}
	}()
	return m.program(m)
}
