// Package zone implements the Alto OS free-storage allocator. A zone is an
// abstract object that can allocate and release blocks of working storage in
// simulated main memory (§5.2: "The storage allocator ... will build zone
// objects to allocate any part of memory, whether in the system free storage
// region or not").
//
// The openness story: zones are an interface; the system free-storage zone
// is just one instance; any program can carve a zone out of any region it
// owns and hand it to, say, the disk-stream creator, which allocates its
// stream records there. Several packages in this repository take a Zone
// parameter with the system zone as the default, mirroring §2's example of
// the disk-stream constructor.
package zone

import (
	"errors"
	"fmt"

	"altoos/internal/mem"
	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Zone is the abstract free-storage object: anything that can allocate and
// free blocks of words in main memory.
type Zone interface {
	// Alloc returns the address of a block of at least n words.
	Alloc(n int) (mem.Addr, error)
	// Free releases a block previously returned by Alloc.
	Free(a mem.Addr) error
}

// Errors returned by zone operations.
var (
	// ErrNoRoom reports that the zone cannot satisfy the request.
	ErrNoRoom = errors.New("zone: no room")
	// ErrBadBlock reports a Free of an address that is not the start of an
	// allocated block of this zone.
	ErrBadBlock = errors.New("zone: not an allocated block of this zone")
	// ErrBadZone reports an invalid zone configuration.
	ErrBadZone = errors.New("zone: invalid region")
)

// Block layout in memory: each block is preceded by a one-word header whose
// top bit marks it allocated and whose low 15 bits give the total size in
// words, header included. Blocks are contiguous, so the whole zone can be
// walked from its base; freeing coalesces adjacent free blocks.
const (
	hdrWords  = 1
	allocBit  = 0x8000
	sizeMask  = 0x7FFF
	minSplit  = 2 // do not leave fragments smaller than header+1
	maxRegion = sizeMask
)

// MemZone is the standard zone implementation: a first-fit allocator with
// coalescing over a region of main memory.
type MemZone struct {
	m     *mem.Memory
	base  mem.Addr
	size  int // words
	stats Stats

	// rec/clk stamp alloc/free events when a flight recorder is attached;
	// both nil when tracing is off. A zone is single-threaded like the
	// machine it models, so no lock guards them.
	rec *trace.Recorder
	clk *sim.Clock
}

// SetTrace attaches a flight recorder and the clock that stamps its events
// (both nil to detach). core.System calls this when it builds the system
// free-storage zone.
func (z *MemZone) SetTrace(r *trace.Recorder, c *sim.Clock) {
	z.rec = r
	z.clk = c
}

// emit records one zone event plus the occupancy sample that makes
// fragmentation visible over time.
func (z *MemZone) emit(k trace.Kind, a mem.Addr, words int) {
	if z.rec == nil || z.clk == nil {
		return
	}
	z.rec.Emit(z.clk.Now(), k, "", int64(a), int64(words))
	if k == trace.KindZoneAlloc {
		z.rec.Add("zone.alloc", 1)
	} else {
		z.rec.Add("zone.free", 1)
	}
	z.rec.Observe("zone.inuse.words", float64(z.stats.InUse))
}

// Stats describes a zone's activity and occupancy.
type Stats struct {
	Allocs   int64
	Frees    int64
	Failures int64
	InUse    int // words currently allocated, headers included
}

var _ Zone = (*MemZone)(nil)

// New builds a zone over the size words starting at base in m. The region
// must fit in the address space and be at most 32767 words (the header word
// spends a bit on the allocated flag).
func New(m *mem.Memory, base mem.Addr, size int) (*MemZone, error) {
	if size < hdrWords+1 || size > maxRegion {
		return nil, fmt.Errorf("%w: size %d", ErrBadZone, size)
	}
	if int(base)+size > mem.Words {
		return nil, fmt.Errorf("%w: [%d,%d) exceeds memory", ErrBadZone, base, int(base)+size)
	}
	z := &MemZone{m: m, base: base, size: size}
	m.Store(base, mem.Word(size)) // one big free block
	return z, nil
}

// Region returns the memory region the zone manages.
func (z *MemZone) Region() mem.Region {
	//altovet:allow wordwidth base+size is validated against the 16-bit address space at construction
	return mem.Region{Start: z.base, End: mem.Addr(int(z.base) + z.size)}
}

// Stats returns a snapshot of the zone's counters.
func (z *MemZone) Stats() Stats { return z.stats }

// Avail returns the number of words in the largest free block (the largest
// single allocation that can succeed).
func (z *MemZone) Avail() int {
	largest := 0
	z.walk(func(a mem.Addr, size int, used bool) {
		if !used && size-hdrWords > largest {
			largest = size - hdrWords
		}
	})
	return largest
}

// FreeWords returns the total number of free words in the zone (headers of
// free blocks included).
func (z *MemZone) FreeWords() int {
	total := 0
	z.walk(func(a mem.Addr, size int, used bool) {
		if !used {
			total += size
		}
	})
	return total
}

// walk visits every block in address order.
func (z *MemZone) walk(f func(a mem.Addr, size int, used bool)) {
	off := 0
	for off < z.size {
		//altovet:allow wordwidth off < size and base+size fits the 16-bit address space
		a := mem.Addr(int(z.base) + off)
		h := z.m.Load(a)
		size := int(h & sizeMask)
		if size == 0 {
			// A corrupt header would loop forever; stop the walk. The zone
			// has no checks stronger than this — memory is unprotected, as
			// on the real machine.
			return
		}
		f(a, size, h&allocBit != 0)
		off += size
	}
}

// Alloc implements Zone. First fit, splitting when the remainder is big
// enough to be a block of its own.
func (z *MemZone) Alloc(n int) (mem.Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: alloc of %d words", ErrNoRoom, n)
	}
	need := n + hdrWords
	off := 0
	for off < z.size {
		//altovet:allow wordwidth off < size and base+size fits the 16-bit address space
		a := mem.Addr(int(z.base) + off)
		h := z.m.Load(a)
		size := int(h & sizeMask)
		if size == 0 {
			break
		}
		if h&allocBit == 0 {
			// Coalesce the run of free blocks starting here before testing.
			size = z.coalesceAt(a, size)
			if size >= need {
				rest := size - need
				if rest >= minSplit {
					//altovet:allow wordwidth need <= size of this block, so a+need stays inside the zone
					z.m.Store(mem.Addr(int(a)+need), mem.Word(rest))
					size = need
				}
				z.m.Store(a, mem.Word(size)|allocBit)
				z.stats.Allocs++
				z.stats.InUse += size
				z.emit(trace.KindZoneAlloc, a+hdrWords, size)
				return a + hdrWords, nil
			}
		}
		off += size
	}
	z.stats.Failures++
	if z.rec != nil {
		z.rec.Add("zone.alloc.fail", 1)
	}
	return 0, fmt.Errorf("%w: %d words (largest free %d)", ErrNoRoom, n, z.Avail())
}

// coalesceAt merges the free block at a with any free blocks immediately
// after it, returning the merged size. The header at a is rewritten.
func (z *MemZone) coalesceAt(a mem.Addr, size int) int {
	for {
		nextOff := int(a) - int(z.base) + size
		if nextOff >= z.size {
			break
		}
		//altovet:allow wordwidth nextOff < size and base+size fits the 16-bit address space
		na := mem.Addr(int(z.base) + nextOff)
		nh := z.m.Load(na)
		if nh&allocBit != 0 || nh&sizeMask == 0 {
			break
		}
		size += int(nh & sizeMask)
	}
	z.m.Store(a, mem.Word(size))
	return size
}

// Free implements Zone.
func (z *MemZone) Free(a mem.Addr) error {
	if int(a) <= int(z.base) || int(a) >= int(z.base)+z.size {
		return fmt.Errorf("%w: %#04x outside %v", ErrBadBlock, a, z.Region())
	}
	hdr := a - hdrWords
	// Verify the address is a block boundary by walking; memory has no
	// protection, but the zone can at least refuse obvious nonsense.
	found := false
	var size int
	z.walk(func(b mem.Addr, s int, used bool) {
		if b == hdr && used {
			found = true
			size = s
		}
	})
	if !found {
		return fmt.Errorf("%w: %#04x", ErrBadBlock, a)
	}
	z.m.Store(hdr, mem.Word(size)) // clear alloc bit
	z.stats.Frees++
	z.stats.InUse -= size
	z.emit(trace.KindZoneFree, a, size)
	return nil
}

// AllocWords allocates a block and returns it as a live slice view is not
// possible over simulated memory; instead this helper allocates and zeroes
// the block, returning its address.
func (z *MemZone) AllocWords(n int) (mem.Addr, error) {
	a, err := z.Alloc(n)
	if err != nil {
		return 0, err
	}
	z.m.Clear(a, n)
	return a, nil
}
