package zone

import (
	"errors"
	"testing"
	"testing/quick"

	"altoos/internal/mem"
	"altoos/internal/sim"
)

func newZone(t *testing.T, size int) (*mem.Memory, *MemZone) {
	t.Helper()
	m := mem.New()
	z, err := New(m, 0x1000, size)
	if err != nil {
		t.Fatal(err)
	}
	return m, z
}

func TestAllocFreeRoundTrip(t *testing.T) {
	m, z := newZone(t, 1000)
	a, err := z.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if !z.Region().Contains(a) {
		t.Fatalf("block %#x outside zone %v", a, z.Region())
	}
	for i := 0; i < 10; i++ {
		m.Store(a+mem.Addr(i), mem.Word(i))
	}
	if err := z.Free(a); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationsDisjoint(t *testing.T) {
	_, z := newZone(t, 1000)
	type blk struct {
		a mem.Addr
		n int
	}
	var blocks []blk
	for _, n := range []int{5, 17, 1, 40, 8} {
		a, err := z.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk{a, n})
	}
	for i, b := range blocks {
		for j, c := range blocks {
			if i == j {
				continue
			}
			if int(b.a) < int(c.a)+c.n && int(c.a) < int(b.a)+b.n {
				t.Fatalf("blocks %d and %d overlap: %#x+%d vs %#x+%d", i, j, b.a, b.n, c.a, c.n)
			}
		}
	}
}

func TestExhaustionAndRecovery(t *testing.T) {
	_, z := newZone(t, 100)
	var addrs []mem.Addr
	for {
		a, err := z.Alloc(10)
		if err != nil {
			if !errors.Is(err, ErrNoRoom) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		t.Fatal("no allocations succeeded")
	}
	for _, a := range addrs {
		if err := z.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything the original big allocation must fit again.
	if _, err := z.Alloc(90); err != nil {
		t.Fatalf("zone did not coalesce after frees: %v", err)
	}
}

func TestCoalescingAcrossFreeOrder(t *testing.T) {
	_, z := newZone(t, 200)
	a1, _ := z.Alloc(40)
	a2, _ := z.Alloc(40)
	a3, _ := z.Alloc(40)
	// Free middle first, then neighbours: coalescing must still produce one
	// big block.
	for _, a := range []mem.Addr{a2, a1, a3} {
		if err := z.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := z.Alloc(150); err != nil {
		t.Fatalf("fragmented after out-of-order frees: %v", err)
	}
}

func TestFreeRejectsGarbage(t *testing.T) {
	_, z := newZone(t, 100)
	a, _ := z.Alloc(10)
	cases := []mem.Addr{0, 0x1000, a + 1, 0x1000 + 99, 0x5000}
	for _, bad := range cases {
		if err := z.Free(bad); !errors.Is(err, ErrBadBlock) {
			t.Errorf("Free(%#x) = %v, want ErrBadBlock", bad, err)
		}
	}
	if err := z.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := z.Free(a); !errors.Is(err, ErrBadBlock) {
		t.Errorf("double free = %v, want ErrBadBlock", err)
	}
}

func TestNewRejectsBadRegions(t *testing.T) {
	m := mem.New()
	if _, err := New(m, 0, 1); !errors.Is(err, ErrBadZone) {
		t.Error("accepted tiny zone")
	}
	if _, err := New(m, 0, 0x8000); !errors.Is(err, ErrBadZone) {
		t.Error("accepted oversized zone")
	}
	if _, err := New(m, 0xFF00, 0x200); !errors.Is(err, ErrBadZone) {
		t.Error("accepted zone past top of memory")
	}
}

func TestTwoZonesShareMemoryIndependently(t *testing.T) {
	// §5.2: the allocator builds zones over any part of memory. Two zones on
	// disjoint regions must not interfere.
	m := mem.New()
	z1, err := New(m, 0x1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := New(m, 0x4000, 500)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := z1.Alloc(100)
	a2, _ := z2.Alloc(100)
	if !z1.Region().Contains(a1) || !z2.Region().Contains(a2) {
		t.Fatal("blocks escaped their zones")
	}
	if err := z1.Free(a1); err != nil {
		t.Fatal(err)
	}
	if err := z2.Free(a2); err != nil {
		t.Fatal(err)
	}
	if err := z1.Free(a2); !errors.Is(err, ErrBadBlock) {
		t.Error("zone 1 accepted zone 2's block")
	}
}

func TestStats(t *testing.T) {
	_, z := newZone(t, 500)
	a, _ := z.Alloc(10)
	st := z.Stats()
	if st.Allocs != 1 || st.InUse < 10 {
		t.Errorf("stats after alloc: %+v", st)
	}
	if err := z.Free(a); err != nil {
		t.Fatal(err)
	}
	st = z.Stats()
	if st.Frees != 1 || st.InUse != 0 {
		t.Errorf("stats after free: %+v", st)
	}
	if _, err := z.Alloc(100000); err == nil {
		t.Fatal("huge alloc succeeded")
	}
	if z.Stats().Failures != 1 {
		t.Error("failure not counted")
	}
}

func TestAllocWordsZeroes(t *testing.T) {
	m, z := newZone(t, 100)
	a, err := z.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Store(a+mem.Addr(i), 0xFFFF)
	}
	if err := z.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := z.AllocWords(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if m.Load(b+mem.Addr(i)) != 0 {
			t.Fatal("AllocWords did not zero the block")
		}
	}
}

// Property test: a random interleaving of allocations and frees never hands
// out overlapping blocks, and freeing everything always restores the full
// region.
func TestZoneInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		m := mem.New()
		z, err := New(m, 0x2000, 2000)
		if err != nil {
			return false
		}
		type blk struct {
			a mem.Addr
			n int
		}
		var live []blk
		for step := 0; step < 300; step++ {
			if len(live) == 0 || r.Bool(3, 5) {
				n := 1 + r.Intn(60)
				a, err := z.Alloc(n)
				if err != nil {
					continue // exhaustion is legal
				}
				for _, b := range live {
					if int(a) < int(b.a)+b.n && int(b.a) < int(a)+n {
						return false // overlap
					}
				}
				live = append(live, blk{a, n})
			} else {
				i := r.Intn(len(live))
				if err := z.Free(live[i].a); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, b := range live {
			if err := z.Free(b.a); err != nil {
				return false
			}
		}
		_, err = z.Alloc(1990)
		return err == nil
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
