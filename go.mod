module altoos

go 1.22
