package altoos_test

// Black-box tests of the public facade: what a downstream user of the
// library sees, with no access to internal packages.

import (
	"bytes"
	"strings"
	"testing"

	"altoos"
)

func newSys(t *testing.T) (*altoos.System, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	sys, err := altoos.New(altoos.Config{Display: &out})
	if err != nil {
		t.Fatal(err)
	}
	return sys, &out
}

func TestPublicQuickstartFlow(t *testing.T) {
	sys, _ := newSys(t)
	w, err := sys.CreateStream("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if err := altoos.PutString(w, "through the facade"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := sys.OpenStream("hello.txt", altoos.ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, err := altoos.ReadAllStream(r)
	r.Close()
	if err != nil || string(got) != "through the facade" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestPublicScavengeAndCompact(t *testing.T) {
	sys, _ := newSys(t)
	w, _ := sys.CreateStream("s.txt")
	altoos.PutString(w, strings.Repeat("z", 2000))
	w.Close()

	rep, err := sys.Scavenge()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesFound < 3 {
		t.Errorf("scavenge found %d files", rep.FilesFound)
	}
	crep, err := sys.Compact()
	if err != nil {
		t.Fatal(err)
	}
	_ = crep
	r, err := sys.OpenStream("s.txt", altoos.ReadMode)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := altoos.ReadAllStream(r)
	r.Close()
	if len(got) != 2000 {
		t.Errorf("file damaged: %d bytes", len(got))
	}
}

func TestPublicDirectoryAPI(t *testing.T) {
	sys, _ := newSys(t)
	f, err := sys.CreateFile("named.dat")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := altoos.ResolveName(sys.FS, "named.dat")
	if err != nil {
		t.Fatal(err)
	}
	if fn.FV != f.FN().FV {
		t.Error("ResolveName disagreement")
	}
	root, err := altoos.OpenRoot(sys.FS)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := root.List()
	if err != nil || len(entries) < 3 {
		t.Fatalf("List: %d entries, %v", len(entries), err)
	}
}

func TestPublicWorldSwap(t *testing.T) {
	sys, _ := newSys(t)
	sys.Mem.Store(0x5555, 0xAAAA)
	sys.CPU.PC = 0x5555
	if _, err := sys.SaveWorld(); err != nil {
		t.Fatal(err)
	}
	sys.Mem.Store(0x5555, 0)
	if err := sys.Boot(); err != nil {
		t.Fatal(err)
	}
	if sys.Mem.Load(0x5555) != 0xAAAA {
		t.Fatal("boot did not restore")
	}
}

func TestPublicJuntaLevels(t *testing.T) {
	sys, _ := newSys(t)
	freed, words, err := sys.Levels.Do(altoos.LevelDiskStream)
	if err != nil {
		t.Fatal(err)
	}
	if words <= 0 || freed.Size() != words {
		t.Fatalf("junta freed %d words, region %v", words, freed)
	}
	if err := sys.Levels.CounterJunta(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCustomDeviceAndZone(t *testing.T) {
	// The openness contract: a user builds their own drive and zone and
	// uses the standard packages over them.
	drive, err := altoos.NewDrive(altoos.Trident(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := altoos.Format(drive)
	if err != nil {
		t.Fatal(err)
	}
	var m altoos.Memory
	z, err := altoos.NewZone(&m, 0x2000, 0x3000)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("custom.dat")
	if err != nil {
		t.Fatal(err)
	}
	s, err := altoos.NewDiskStream(f, z, &m, altoos.UpdateMode)
	if err != nil {
		t.Fatal(err)
	}
	if err := altoos.PutString(s, "custom substrate"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := altoos.Mount(drive); err != nil {
		t.Fatal(err)
	}
}

func TestPublicNetwork(t *testing.T) {
	net := altoos.NewNetwork(nil)
	a, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(altoos.Packet{Dst: 2, Type: 9}); err != nil {
		t.Fatal(err)
	}
	if p, ok := b.Recv(); !ok || p.Type != 9 {
		t.Fatal("packet lost")
	}
}

func TestPublicExecutiveSession(t *testing.T) {
	sys, out := newSys(t)
	w, _ := sys.CreateStream("note.txt")
	altoos.PutString(w, "facade note")
	w.Close()
	sys.TypeAhead("ls\ntype note.txt\nquit\n")
	if err := sys.RunExecutive(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "facade note") {
		t.Fatalf("executive output: %q", out.String())
	}
}
