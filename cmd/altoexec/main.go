// altoexec boots a simulated Alto from a pack image and runs the Executive
// interactively: stdin is the keyboard, stdout the display.
//
// Usage:
//
//	altoexec <img>            attach the pack and start the Executive
//	altoexec -new <img>       format a fresh pack first
//
// Try: ls, free, type <file>, delete <file>, scavenge, compact, stats,
// run <program>, help, quit. Changes are written back to the image on exit.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	"altoos"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
)

func main() {
	log.SetFlags(0)
	args := os.Args[1:]
	fresh := false
	if len(args) > 0 && args[0] == "-new" {
		fresh = true
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: altoexec [-new] <img>")
		os.Exit(2)
	}
	img := args[0]

	var drv *disk.Drive
	var err error
	if fresh {
		drv, err = disk.NewDrive(disk.Diablo31(), 1, nil)
		if err != nil {
			log.Fatal(err)
		}
		fs, err := file.Format(drv)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dir.InitRoot(fs); err != nil {
			log.Fatal(err)
		}
		if err := fs.Flush(); err != nil {
			log.Fatal(err)
		}
	} else {
		f, err := os.Open(img)
		if err != nil {
			log.Fatal(err)
		}
		drv, err = disk.LoadImage(f, nil)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	sys, err := altoos.New(altoos.Config{Drive: drv, Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("altoexec: %v, pack %d; 'help' lists commands, 'quit' exits\n",
		drv.Geometry(), drv.Pack())

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print(">")
		if !sc.Scan() {
			break
		}
		quit, err := sys.Exec.Execute(sc.Text())
		if err != nil {
			fmt.Printf("?%v\n", err)
		}
		if quit {
			break
		}
	}

	if err := sys.FS.Flush(); err != nil {
		log.Fatal(err)
	}
	tmp := img + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Drive.SaveImage(out); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npack written back to %s (simulated time %v)\n", img, sys.Clock.Now().Round(1000))
}
