// altoasm assembles a source file for the simulated machine and installs
// the resulting code file on a pack image, ready for the Executive's
// "run <name>" (or prints a listing).
//
// Usage:
//
//	altoasm -l <src.asm>                      assemble and list only
//	altoasm <src.asm> <img> <name>            assemble into the image
//
// Fixup binding: a line of the form
//
//	PUTC: .word 0 ; =SYS 1
//
// is just data to the assembler; to bind pointer words to system vector
// stubs use the library API (exec.FixupsFor). altoasm installs programs
// that use direct SYS traps, which need no fixups.
package main

import (
	"fmt"
	"log"
	"os"

	"altoos"
	"altoos/internal/asm"
	"altoos/internal/cpu"
	"altoos/internal/disk"
	"altoos/internal/exec"
	"altoos/internal/mem"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

func main() {
	log.SetFlags(0)
	args := os.Args[1:]
	listing := false
	if len(args) > 0 && args[0] == "-l" {
		listing = true
		args = args[1:]
	}
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: altoasm [-l] <src.asm> [<img> <name>]")
		os.Exit(2)
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	p, err := asm.Assemble(string(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %s: origin %#04x, entry %#04x, %d words, %d symbols\n",
		args[0], p.Origin, p.Entry, len(p.Words), len(p.Symbols))
	if listing {
		for i, w := range p.Words {
			fmt.Printf("%04x: %04x\n", int(p.Origin)+i, w)
		}
	}
	if len(args) < 3 {
		return
	}
	img, name := args[1], args[2]

	f, err := os.Open(img)
	if err != nil {
		log.Fatal(err)
	}
	drv, err := disk.LoadImage(f, nil)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fs, err := altoos.Mount(drv)
	if err != nil {
		log.Fatal(err)
	}
	m := mem.New()
	z, err := zone.New(m, 0x4000, 0x4000)
	if err != nil {
		log.Fatal(err)
	}
	o := exec.NewOS(fs, m, z, stream.NewKeyboard(), stream.NewDisplay(os.Stdout))
	_ = cpu.New(m, drv.Clock(), o) // the OS needs no CPU to write code files
	if err := exec.WriteCodeFile(o, name, p, nil); err != nil {
		log.Fatal(err)
	}
	if err := fs.Flush(); err != nil {
		log.Fatal(err)
	}
	tmp := img + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		log.Fatal(err)
	}
	if err := drv.SaveImage(out); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %s on %s; run it with: altoexec %s, then 'run %s'\n", name, img, img, name)
}
