package main

import "testing"

// TestSelfCheck exercises the cluster-check gate at a reduced client count:
// four full two-phase runs (store sessions, rot, audit, heal) whose event
// streams and metrics must be byte-identical across worker widths 1 and 8.
func TestSelfCheck(t *testing.T) {
	if err := selfCheck(4, 1<<14); err != nil {
		t.Fatal(err)
	}
}
