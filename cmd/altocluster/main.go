// altocluster drives the replicated file service (internal/cluster) from the
// command line: client sessions hammer a sharded, replicated cluster over a
// lossy wire, seeded bit-rot lands on one replica per shard, and the
// distributed Scavenger audits every pack back to byte-identical copies.
//
// The cluster inherits the fleet scheduler's contract: the whole two-phase
// run — every store, every packet, every audit round, every heal — is a pure
// function of the configuration, byte-identical across repeated runs and
// across -workers counts. -check proves it: the cluster runs twice at one
// worker and twice at eight, and every per-machine event stream and every
// metric must come out byte-identical, or the process exits nonzero. That is
// the make cluster-check gate.
//
// Usage:
//
//	altocluster                      # the full E15 run, as a table
//	altocluster -clients 6 -workers 1
//	altocluster -check -clients 6
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"altoos/internal/experiments"
	"altoos/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		clients = flag.Int("clients", 24, "client machines (each runs several store sessions)")
		workers = flag.Int("workers", 8, "worker-pool width for the windowed schedule")
		events  = flag.Int("events", 1<<14, "per-machine ring capacity in events")
		check   = flag.Bool("check", false, "prove determinism: run at 1 and 8 workers, twice each, and fail on any byte difference")
	)
	flag.Parse()

	if *check {
		if err := selfCheck(*clients, *events); err != nil {
			log.Fatalf("altocluster: %v", err)
		}
		fmt.Printf("cluster-check ok: %d-client audit-and-heal schedule byte-identical across runs and worker counts\n", *clients)
		return
	}

	res, err := experiments.E15Cluster(*clients, *workers, nil)
	if err != nil {
		log.Fatalf("altocluster: %v", err)
	}
	fmt.Println(res.Table())
}

// snapshot flattens a run — every machine's full event stream plus every
// metric — into one byte slice, the artifact selfCheck compares.
func snapshot(clients, workers, events int) ([]byte, error) {
	names := []string{}
	recs := map[string]*trace.Recorder{}
	res, err := experiments.E15Cluster(clients, workers, func(name string) *trace.Recorder {
		rec := trace.New(events)
		names = append(names, name)
		recs[name] = rec
		return rec
	})
	if err != nil {
		return nil, fmt.Errorf("workers=%d: %w", workers, err)
	}
	var b strings.Builder
	sort.Strings(names)
	for _, name := range names {
		rec := recs[name]
		fmt.Fprintf(&b, "== %s events=%d\n", name, rec.Len())
		for _, ev := range rec.Events() {
			fmt.Fprintf(&b, "%d %d %d %s %d %d %d\n", ev.T, ev.Dur, ev.Kind, ev.Name, ev.A0, ev.A1, ev.Flow)
		}
	}
	keys := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "metric %s %v\n", k, res.Metrics[k])
	}
	return []byte(b.String()), nil
}

// selfCheck is the cluster-check gate: the same cluster runs twice at one
// worker and twice at eight, and every event stream and metric must be
// byte-identical across all four runs.
func selfCheck(clients, events int) error {
	var base []byte
	var baseLabel string
	for i, workers := range []int{1, 1, 8, 8} {
		snap, err := snapshot(clients, workers, events)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("run %d (workers=%d)", i+1, workers)
		if base == nil {
			if !strings.Contains(string(snap), "== shard0/r0") {
				return fmt.Errorf("%s: no replica event stream in the snapshot — tracing is not wired in", label)
			}
			base, baseLabel = snap, label
			continue
		}
		if string(snap) != string(base) {
			return fmt.Errorf("schedule diverged: %s differs from %s (%d vs %d bytes)", label, baseLabel, len(snap), len(base))
		}
	}
	return nil
}
