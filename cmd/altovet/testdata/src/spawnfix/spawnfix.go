// Package spawnfix exercises the gospawn analyzer. It is loaded under
// altoos/internal/spawnfix (inside the analyzer's scope, every spawn must be
// joined) and under altoos/cmd/spawnfix (entry points are exempt — there the
// only finding is the allow directive itself, reported stale).
package spawnfix

import "sync"

func work() {}

// badSpawn fires and forgets: the goroutine outlives the function and keeps
// running while the next operation — or the byte-identical replay — is.
func badSpawn() {
	go work() // want "goroutine is never joined before badSpawn returns"
}

// badLit is the same leak with a literal body.
func badLit() {
	done := false
	go func() { // want "goroutine is never joined before badLit returns"
		done = true
	}()
	_ = done
}

// goodWaitGroup is the crashpoint worker-pool shape: Done in the goroutine,
// Wait in the spawner.
func goodWaitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// waitAll stands in for a pool helper in another package: the whole-program
// fact "may call Wait" travels with it.
func waitAll(wg *sync.WaitGroup) { wg.Wait() }

// goodHelperJoin joins through the helper — the analyzer must credit the
// helper's waitsWG fact to the spawner.
func goodHelperJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	waitAll(&wg)
}

// goodChannel is the collector shape: the goroutine signals on a channel the
// spawner drains before returning.
func goodChannel() int {
	ch := make(chan int)
	go func() { ch <- 42 }()
	return <-ch
}

func produce(ch chan int) { ch <- 1 }

// goodChanArg passes the drained channel straight to the spawned function.
func goodChanArg() int {
	ch := make(chan int)
	go produce(ch)
	return <-ch
}

// goodClose joins by closing: the spawner ranges the channel to exhaustion.
func goodClose() int {
	ch := make(chan int)
	go func() {
		ch <- 7
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// allowedDaemon shows the escape hatch: a deliberate background goroutine
// takes a justified allow. Under the exempt cmd/ layout this directive
// suppresses nothing and is itself reported stale — which the scope test
// asserts.
func allowedDaemon() {
	//altovet:allow gospawn fixture daemon runs for the process lifetime by design
	go work()
}
