// Package globalfix exercises the globalstate analyzer. It is loaded under
// altoos/internal/fsck — a determinism-gated package, whose package-level
// vars must be frozen by the end of init — and under the ungated
// altoos/internal/globalfix, where the same writes must pass (only the allow
// directive fires there, reported stale).
package globalfix

// counter and table are package-level state; index is a frozen lookup table.
var (
	counter int
	table   = map[string]int{}
	index   []int
)

// machine is where mutable state belongs: each simulated machine owns one.
type machine struct {
	ops int
}

// init may freeze this package's own globals — that is the blessed shape.
func init() {
	index = []int{1, 2, 3}
}

// badAssign mutates a package-level var at run time: every machine in a
// fleet run shares the write.
func badAssign() {
	counter = 5 // want "package-level var counter of determinism-gated"
}

// badIncr is the same leak spelled as ++.
func badIncr() {
	counter++ // want "package-level var counter of determinism-gated"
}

// badIndexed stores through a package-level map.
func badIndexed(k string) {
	table[k] = 1 // want "package-level var table of determinism-gated"
}

// goodLocal mutates a local: no sharing, no finding.
func goodLocal() int {
	n := 0
	n++
	return n
}

// goodPerMachine mutates per-machine state, the rule's recommended home.
func goodPerMachine(m *machine) {
	m.ops++
}

// goodRead only reads the global.
func goodRead() int {
	return counter + index[0]
}

// allowedStat shows the escape hatch for a deliberate process-wide tally.
func allowedStat() {
	//altovet:allow globalstate process-wide debug tally, excluded from replay comparison
	counter += 10
}
