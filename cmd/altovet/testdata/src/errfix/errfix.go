// Package errfix exercises the errdiscard analyzer against the storage
// stack's APIs.
package errfix

import (
	"altoos/internal/disk"
	"altoos/internal/file"
)

// sloppy drops storage errors three different ways.
func sloppy(f *file.File, buf *[disk.PageWords]disk.Word) disk.Word {
	pn, _ := f.LastPage()      // want "LastPage's length discarded; call LastPN"
	_, _ = f.ReadPage(pn, buf) // want "ReadPage's error discarded"
	f.Sync()                   // want "result of Sync dropped"
	_ = f.Sync()               // want "Sync's error discarded"
	return pn
}

// careful propagates everything and uses LastPN when the length is not
// wanted.
func careful(f *file.File, buf *[disk.PageWords]disk.Word) (disk.Word, error) {
	pn := f.LastPN()
	if _, err := f.ReadPage(pn, buf); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return pn, nil
}

// justified shows the escape hatch: a discard with a recorded reason.
func justified(f *file.File) disk.Word {
	pn, _ := f.LastPage() //altovet:allow errdiscard fixture demonstrating a justified discard
	return pn
}

// deferred cleanup is accepted; the idiom has no channel for the error.
func deferred(f *file.File) {
	defer f.Sync()
}

// sloppyChain drops chain results: a []error carries one outcome per
// operation, and every way of losing it is a finding.
func sloppyChain(d *disk.Drive, ops []disk.Op) {
	d.DoChain(ops, disk.Ordered)             // want "result of DoChain dropped"
	_ = d.DoChain(ops, disk.FreeOrder)       // want "DoChain's chain errors discarded"
	disk.DoChainOn(d, ops, disk.Ordered)     // want "result of DoChainOn dropped"
	_ = disk.DoChainOn(d, ops, disk.Ordered) // want "DoChainOn's chain errors discarded"
}

// carefulChain examines the per-operation outcomes.
func carefulChain(d *disk.Drive, ops []disk.Op) error {
	errs := d.DoChain(ops, disk.FreeOrder)
	return disk.FirstChainError(errs)
}
