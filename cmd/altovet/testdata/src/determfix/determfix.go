// Package determfix exercises the determinism analyzer. It pretends to live
// at altoos/internal/determfix, squarely inside the analyzer's scope.
package determfix

import (
	"math/rand" // want "import of math/rand breaks replayability"
	"time"

	"altoos/internal/sim"
	"altoos/internal/trace"
)

// bad reads the host's wall clock and the global PRNG — both make an
// experiment unrepeatable.
func bad() int {
	t := time.Now()              // want "time.Now reads the host wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host wall clock"
	return t.Nanosecond() + rand.Int()
}

// good draws time and randomness from the simulation substrate; using
// time.Duration and the time constants is fine.
func good(c *sim.Clock, r *sim.Rand) (time.Duration, uint16) {
	c.Advance(3 * time.Millisecond)
	return c.Now(), r.Word()
}

// badTracing stamps flight-recorder events off the host clock — the exact
// shape the tracing determinism contract forbids: the trace would differ on
// every run.
func badTracing(rec *trace.Recorder) {
	start := time.Now() // want "time.Now reads the host wall clock"
	rec.Emit(0, trace.KindDiskOp, "op", 0, 0)
	rec.EmitSpan(0, time.Since(start), trace.KindSeek, "", 0, 0) // want "time.Since reads the host wall clock"
}

// goodTracing stamps events exclusively off the simulated clock, so two runs
// of the same workload record byte-identical traces.
func goodTracing(rec *trace.Recorder, c *sim.Clock) {
	start := c.Now()
	c.Advance(2 * time.Millisecond)
	rec.EmitSpan(start, c.Now()-start, trace.KindSeek, "", 0, 0)
	sp := rec.Begin(c, trace.KindScavPhase, "sweep", 0, 0)
	sp.End()
}
