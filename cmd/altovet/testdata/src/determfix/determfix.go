// Package determfix exercises the determinism analyzer. It pretends to live
// at altoos/internal/determfix, squarely inside the analyzer's scope.
package determfix

import (
	"math/rand" // want "import of math/rand breaks replayability"
	"time"

	"altoos/internal/sim"
)

// bad reads the host's wall clock and the global PRNG — both make an
// experiment unrepeatable.
func bad() int {
	t := time.Now()              // want "time.Now reads the host wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host wall clock"
	return t.Nanosecond() + rand.Int()
}

// good draws time and randomness from the simulation substrate; using
// time.Duration and the time constants is fine.
func good(c *sim.Clock, r *sim.Rand) (time.Duration, uint16) {
	c.Advance(3 * time.Millisecond)
	return c.Now(), r.Word()
}
