// Package labelfix exercises the labelcheck analyzer from outside the
// internal/disk and internal/scavenge packages.
package labelfix

import "altoos/internal/disk"

// raw writes a sector value without checking the label first — the §3.3
// violation the analyzer exists to catch.
func raw(dev disk.Device, addr disk.VDA, v *[disk.PageWords]disk.Word) error {
	return dev.Do(&disk.Op{Addr: addr, Value: disk.Write, ValueData: v}) // want "label left unchecked"
}

// blind rewrites a label with no check at all.
func blind(dev disk.Device, addr disk.VDA, lbl *[disk.LabelWords]disk.Word) error {
	return dev.Do(&disk.Op{Addr: addr, Label: disk.Write, LabelData: lbl, Value: disk.Write, ValueData: new([disk.PageWords]disk.Word)}) // want "rewritten blindly"
}

// checked is the disciplined form: the label is verified in passing.
func checked(dev disk.Device, addr disk.VDA, lbl *[disk.LabelWords]disk.Word, v *[disk.PageWords]disk.Word) error {
	return dev.Do(&disk.Op{Addr: addr, Label: disk.Check, LabelData: lbl, Value: disk.Write, ValueData: v})
}

// helper uses the ops layer, which encodes the discipline once.
func helper(dev disk.Device, addr disk.VDA, lbl disk.Label, v *[disk.PageWords]disk.Word) error {
	return disk.WriteValue(dev, addr, lbl, v)
}

// offline pokes at the drive's no-cost inspection hook, which only tools
// outside internal/ may use.
func offline(d *disk.Drive, a disk.VDA) bool {
	_, ok := d.PeekLabel(a) // want "PeekLabel makes no checks"
	return ok
}
