// Package lockfix exercises the mutexorder analyzer: a lock-holding type
// that calls into the lock-holding disk package.
package lockfix

import (
	"sync"

	"altoos/internal/disk"
)

// Cache is a lock-holding type fronting a disk device.
type Cache struct {
	mu  sync.Mutex
	dev disk.Device
	n   int
}

// Bad performs a disk operation while holding its own lock: if the drive's
// lock ever waited on a cache, this would be half of a deadlock cycle.
func (c *Cache) Bad(op *disk.Op) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.dev.Do(op) // want "Cache.Bad calls disk.Do while holding a mutex"
}

// BadHelper reaches the drive's lock through a package-level helper.
func (c *Cache) BadHelper(a disk.VDA, l disk.Label, v *[disk.PageWords]disk.Word) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return disk.ReadValue(c.dev, a, l, v) // want "Cache.BadHelper calls disk.ReadValue while holding a mutex"
}

// Good snapshots under the lock, releases it, then crosses the boundary —
// the ether.Send pattern.
func (c *Cache) Good(op *disk.Op) error {
	c.mu.Lock()
	dev := c.dev
	c.n++
	c.mu.Unlock()
	return dev.Do(op)
}

// Pure calls that stay inside unlocked helpers are fine even under the
// lock.
func (c *Cache) Stats(fv disk.FV, pn disk.Word) [disk.LabelWords]disk.Word {
	c.mu.Lock()
	defer c.mu.Unlock()
	return disk.LinkPattern(fv, pn)
}
