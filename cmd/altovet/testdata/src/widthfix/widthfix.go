// Package widthfix exercises the wordwidth analyzer.
package widthfix

// word mirrors the system's 16-bit machine word.
type word = uint16

// narrowing demonstrates the flagged and accepted conversion shapes.
func narrowing(a, b int) word {
	x := word(a * b)            // want "64-bit \\* result converted to 16-bit"
	y := word((a * b) & 0xFFFF) // masked: truncation is declared
	z := word(a / b)            // reducing operator: already bounded
	s := word(a % 97)           // reducing operator
	c := word(512)              // constants are checked by the compiler
	u := word(a<<4 + b)         // want "64-bit \\+ result converted to 16-bit"
	//altovet:allow wordwidth caller guarantees a+b < 65536
	v := word(a + b)
	return x + y + z + s + c + u + v
}

// shifts demonstrates the always-zero shift rule.
func shifts(s word) word {
	bad := s << 16 // want "shifting a 16-bit word by 16 bits always yields zero"
	good := s << 8
	wide := uint32(s) << 16 // widening first is the correct idiom
	return bad + good + word(wide>>16)
}
