// Package taintfix exercises the simtaint analyzer's interprocedural flow
// layer. It is loaded under altoos/cmd/taintfix: entry points may read the
// wall clock (no call-site bans there), but the two time domains must still
// never mix — a sim-derived duration pacing host execution or a wall-derived
// duration charged to the simulation is a finding wherever it happens. The
// scope test loads the same file under altoos/internal/taintfix, where the
// call-site bans fire on top of the flows.
package taintfix

import (
	"time"

	"altoos/internal/sim"
)

func work() {}

// badSimToHost paces real execution by simulated time: the host would sleep
// for however long the model imagined.
func badSimToHost(c *sim.Clock) {
	d := c.Now()
	time.Sleep(d) // want "sim-clock-derived duration flows into time.Sleep"
}

// badArithmetic shows taint surviving arithmetic and reassignment.
func badArithmetic(c *sim.Clock) {
	d := c.Now() + time.Millisecond
	d = d * 2
	time.Sleep(d) // want "sim-clock-derived duration flows into time.Sleep"
}

// simElapsed is a helper whose result derives from the simulated clock; the
// whole-program summary carries that fact to its callers.
func simElapsed(c *sim.Clock) time.Duration {
	return c.Now()
}

// badInterproc mixes the domains through the helper's return value.
func badInterproc(c *sim.Clock) {
	time.Sleep(simElapsed(c)) // want "sim-clock-derived duration flows into time.Sleep"
}

// badWallToSim charges host jitter to the model: the measurement instrument
// would report the build machine's load average.
func badWallToSim(c *sim.Clock) {
	start := time.Now()
	work()
	c.Advance(time.Since(start)) // want "wall-clock-derived duration flows into sim.Clock.Advance"
}

// goodHostPacing sleeps a constant: no sim provenance, fine in an entry
// point.
func goodHostPacing() {
	time.Sleep(50 * time.Millisecond)
}

// goodModelledDelay charges a modelled constant to the simulation.
func goodModelledDelay(c *sim.Clock) {
	c.Advance(3 * time.Millisecond)
}

// goodSeparateDomains reads both clocks but never lets them touch.
func goodSeparateDomains(c *sim.Clock) (time.Duration, time.Time) {
	simNow := c.Now()
	hostNow := time.Now()
	return simNow, hostNow
}

// allowedBridge shows the escape hatch for a deliberate bridge — a demo that
// replays a simulated schedule in real time.
func allowedBridge(c *sim.Clock) {
	d := c.Now()
	//altovet:allow simtaint demo playback deliberately paces the host by the simulated schedule
	time.Sleep(d)
}
