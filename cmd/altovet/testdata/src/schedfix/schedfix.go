// Package schedfix exercises the determinism analyzer's replay-critical
// rules. The fixture is loaded under the virtual paths altoos/internal/disk,
// altoos/internal/pup, altoos/internal/fileserver, altoos/internal/crashpoint
// and altoos/internal/fsck — the packages whose event order (rotational
// schedule, retransmission timers, session service order, merged sweep
// reports, violation lists) must replay byte-identically: there, beyond the
// usual wall-clock ban, map iteration order is a finding, because Go
// randomizes map ranges.
package schedfix

import (
	"sort"
	"time"
)

type op struct {
	addr uint16
}

// badSchedule derives a transfer order from a map range and a wall-clock
// read — both make two runs of the same workload schedule differently.
func badSchedule(pending map[uint16]op) []op {
	var out []op
	for _, o := range pending { // want "map iteration order is randomized"
		out = append(out, o)
	}
	deadline := time.Now() // want "time.Now reads the host wall clock"
	_ = deadline
	return out
}

// goodSchedule orders transfers by disk address alone: deterministic input,
// deterministic sort, no clock but the simulated one (not needed here).
func goodSchedule(pending []op) []op {
	sort.Slice(pending, func(i, j int) bool { return pending[i].addr < pending[j].addr })
	return pending
}

// goodLookup shows the boundary of the rule: indexing a map is fine — only
// iteration order is randomized, and a keyed lookup has no order at all.
func goodLookup(hints map[uint16]op, k uint16) (op, bool) {
	o, ok := hints[k]
	return o, ok
}
