// Package chanfix exercises the chanorder analyzer. It is loaded under
// altoos/internal/disk — a determinism-gated package, where scheduler-order-
// dependent channel patterns are findings — and under the ungated
// altoos/internal/chanfix, where the same code must pass (only the allow
// directive fires there, reported stale).
package chanfix

// badSelect races two receives: the scheduler breaks the tie with a uniform
// random choice, different on every run.
func badSelect(a, b chan int) int {
	select { // want "select with 2 communicating cases resolves by the scheduler's random choice"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// badPoll is a non-blocking poll: its outcome depends on how far the sender
// happens to have progressed.
func badPoll(a chan int) (int, bool) {
	select { // want "select with a default clause is a non-blocking poll"
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// badLen reads the same racing quantity as a number.
func badLen(a chan int) bool {
	return len(a) > 0 // want "len of a channel reads racing buffer occupancy"
}

// goodSingle blocks on exactly one case: no choice, no race.
func goodSingle(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// goodLen shows the boundary: len of a slice is not a channel read.
func goodLen(xs []int) bool {
	return len(xs) > 0
}

// allowedShutdown shows the escape hatch for a pattern proven harmless — a
// drain loop confined to a single goroutine at shutdown.
func allowedShutdown(a, b chan int) (n int) {
	//altovet:allow chanorder shutdown drain; both queues are closed and fully buffered
	select {
	case <-a:
		n++
	case <-b:
		n++
	}
	return n
}
