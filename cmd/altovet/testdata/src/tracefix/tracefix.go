// Package tracefix exercises the tracecover analyzer. It is loaded under
// altoos/internal/disk — a traced package, whose exported sim-time-charging
// operations must be visible to the flight recorder — and under the untraced
// altoos/internal/tracefix, where the same code must pass (only the allow
// directive fires there, reported stale).
package tracefix

import (
	"time"

	"altoos/internal/sim"
	"altoos/internal/trace"
)

// Dev is a stand-in device: per-machine state plus its recorder.
type Dev struct {
	rec *trace.Recorder
	ops int64
}

// BadOp charges simulated time but emits nothing: invisible in the Chrome
// trace and the stats table.
func BadOp(c *sim.Clock) { // want "exported BadOp charges simulated time but emits no .*-attributed trace span or counter"
	c.Advance(3 * time.Millisecond)
}

// spin is the unexported worker BadDeep hides behind.
func spin(c *sim.Clock) {
	c.Advance(time.Millisecond)
}

// BadDeep charges simulated time through a helper — reachability, not
// syntax, decides.
func BadDeep(c *sim.Clock) { // want "exported BadDeep charges simulated time but emits no .*-attributed trace span or counter"
	spin(c)
}

// GoodOp pairs the charge with a counter attributed to this package.
func (d *Dev) GoodOp(c *sim.Clock) {
	c.Advance(2 * time.Millisecond)
	d.ops++
	d.rec.Add("fix.op", 1)
}

// GoodSpan pairs the charge with a span.
func (d *Dev) GoodSpan(c *sim.Clock) {
	sp := d.rec.Begin(c, trace.KindDiskOp, "fix", 0, 0)
	c.Advance(time.Millisecond)
	sp.End()
}

// GoodAccessor charges nothing: accessors and constructors pass without
// special cases.
func (d *Dev) GoodAccessor() int64 {
	return d.ops
}

// AllowedProbe shows the escape hatch for a deliberate blind spot — an
// offline inspection hook that must not pollute the trace.
//
//altovet:allow tracecover offline probe; events would drown the trace it inspects
func AllowedProbe(c *sim.Clock) {
	c.Advance(time.Microsecond)
}
