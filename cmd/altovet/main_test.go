package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"altoos/internal/vet"
)

// loadFixture type-checks a fixture package under a virtual import path, so
// the analyzers' scope rules treat it as living wherever the test says.
func loadFixture(t *testing.T, dir, virtualPath string) *vet.Package {
	t.Helper()
	mod, err := vet.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := mod.LoadDir(filepath.Join("testdata", "src", dir), virtualPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// analyzerByName fails the test rather than returning nil.
func analyzerByName(t *testing.T, name string) *vet.Analyzer {
	t.Helper()
	for _, a := range vet.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestFixtures runs each analyzer over its fixture package and checks every
// finding against the fixture's // want comments — at least one positive
// and one negative case per analyzer live in the fixtures.
func TestFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		dir      string
		virtual  string
	}{
		{"determinism", "determfix", "altoos/internal/determfix"},
		{"determinism", "schedfix", "altoos/internal/disk"},
		{"determinism", "schedfix", "altoos/internal/pup"},
		{"determinism", "schedfix", "altoos/internal/fileserver"},
		{"determinism", "schedfix", "altoos/internal/crashpoint"},
		{"determinism", "schedfix", "altoos/internal/fsck"},
		{"wordwidth", "widthfix", "altoos/internal/widthfix"},
		{"labelcheck", "labelfix", "altoos/internal/labelfix"},
		{"errdiscard", "errfix", "altoos/internal/errfix"},
		{"mutexorder", "lockfix", "altoos/internal/lockfix"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, tc.virtual)
			diags := vet.Run(pkg, []*vet.Analyzer{analyzerByName(t, tc.analyzer)})
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no findings at all", tc.dir)
			}
			for _, problem := range vet.CheckWant(pkg, diags) {
				t.Error(problem)
			}
		})
	}
}

// TestDeterminismScope loads the determinism fixture under a cmd/ virtual
// path: entry points are exempt, so the same code must produce no findings.
func TestDeterminismScope(t *testing.T) {
	pkg := loadFixture(t, "determfix", "altoos/cmd/determfix")
	diags := vet.Run(pkg, []*vet.Analyzer{analyzerByName(t, "determinism")})
	for _, d := range diags {
		t.Errorf("determinism fired in exempt cmd/ scope: %s", d)
	}
}

// TestMapRangeScope loads the scheduler fixture outside the replay-critical
// packages (internal/disk, internal/pup, internal/fileserver): the
// map-iteration rule is scoped to those three, so only the wall-clock
// finding survives the move.
func TestMapRangeScope(t *testing.T) {
	pkg := loadFixture(t, "schedfix", "altoos/internal/file")
	diags := vet.Run(pkg, []*vet.Analyzer{analyzerByName(t, "determinism")})
	for _, d := range diags {
		if strings.Contains(d.Message, "map iteration") {
			t.Errorf("map-range rule fired outside the replay-critical packages: %s", d)
		}
	}
	if len(diags) != 1 {
		t.Errorf("got %d findings outside the scoped packages, want only the time.Now one: %v", len(diags), diags)
	}
}

// TestLabelCheckScope loads the labelcheck fixture as if it were the disk
// package itself, which is entitled to raw sector access.
func TestLabelCheckScope(t *testing.T) {
	pkg := loadFixture(t, "labelfix", "altoos/internal/disk2")
	// Under a non-exempt path it fires (see TestFixtures); under the real
	// disk path it must not. Same directory, different virtual location.
	exempt := loadFixture(t, "labelfix", "altoos/internal/scavenge")
	if diags := vet.Run(exempt, []*vet.Analyzer{analyzerByName(t, "labelcheck")}); len(diags) != 0 {
		t.Errorf("labelcheck fired in exempt scavenge scope: %v", diags)
	}
	if diags := vet.Run(pkg, []*vet.Analyzer{analyzerByName(t, "labelcheck")}); len(diags) == 0 {
		t.Error("labelcheck silent outside the exempt packages")
	}
}

// TestProductionTreeClean is the gate the Makefile check target automates:
// the whole module, every analyzer, zero findings.
func TestProductionTreeClean(t *testing.T) {
	mod, err := vet.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mod.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range vet.Run(pkg, vet.Analyzers()) {
			t.Errorf("%s", d)
		}
	}
}

// TestRunExitCodes drives the CLI entry point the way the shell does.
func TestRunExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "labelcheck") {
		t.Errorf("-list output missing analyzers: %q", out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-run", "nosuch"}, &out, &errOut); code != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Errorf("production tree not clean: exit %d\n%s", code, out.String())
	}
}
