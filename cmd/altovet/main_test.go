package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"altoos/internal/vet"
)

// loadFixture type-checks a fixture package under a virtual import path, so
// the analyzers' scope rules treat it as living wherever the test says.
func loadFixture(t *testing.T, dir, virtualPath string) *vet.Package {
	t.Helper()
	mod, err := vet.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := mod.LoadDir(filepath.Join("testdata", "src", dir), virtualPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// analyzersByName fails the test rather than returning nil.
func analyzersByName(t *testing.T, names ...string) []*vet.Analyzer {
	t.Helper()
	byName := map[string]*vet.Analyzer{}
	for _, a := range vet.Analyzers() {
		byName[a.Name] = a
	}
	var out []*vet.Analyzer
	for _, name := range names {
		a, ok := byName[name]
		if !ok {
			t.Fatalf("no analyzer named %q", name)
		}
		out = append(out, a)
	}
	return out
}

// TestFixtures runs analyzers over their fixture packages and checks every
// finding against the fixture's // want comments — at least one positive
// and one negative case per analyzer live in the fixtures. The determinism
// fixtures run determinism and simtaint together: the wall-clock call-site
// bans moved from the former to the latter, and the fixtures cover the
// seam.
func TestFixtures(t *testing.T) {
	cases := []struct {
		name      string
		analyzers []string
		dir       string
		virtual   string
	}{
		{"determinism", []string{"determinism", "simtaint"}, "determfix", "altoos/internal/determfix"},
		{"sched-disk", []string{"determinism", "simtaint"}, "schedfix", "altoos/internal/disk"},
		{"sched-pup", []string{"determinism", "simtaint"}, "schedfix", "altoos/internal/pup"},
		{"sched-fileserver", []string{"determinism", "simtaint"}, "schedfix", "altoos/internal/fileserver"},
		{"sched-crashpoint", []string{"determinism", "simtaint"}, "schedfix", "altoos/internal/crashpoint"},
		{"sched-fsck", []string{"determinism", "simtaint"}, "schedfix", "altoos/internal/fsck"},
		{"sched-scope", []string{"determinism", "simtaint"}, "schedfix", "altoos/internal/scope"},
		{"sched-fleet", []string{"determinism", "simtaint"}, "schedfix", "altoos/internal/fleet"},
		{"sched-cluster", []string{"determinism", "simtaint"}, "schedfix", "altoos/internal/cluster"},
		{"wordwidth", []string{"wordwidth"}, "widthfix", "altoos/internal/widthfix"},
		{"labelcheck", []string{"labelcheck"}, "labelfix", "altoos/internal/labelfix"},
		{"errdiscard", []string{"errdiscard"}, "errfix", "altoos/internal/errfix"},
		{"mutexorder", []string{"mutexorder"}, "lockfix", "altoos/internal/lockfix"},
		{"gospawn", []string{"gospawn"}, "spawnfix", "altoos/internal/spawnfix"},
		{"gospawn-fleet", []string{"gospawn"}, "spawnfix", "altoos/internal/fleet"},
		{"gospawn-cluster", []string{"gospawn"}, "spawnfix", "altoos/internal/cluster"},
		{"chanorder", []string{"chanorder"}, "chanfix", "altoos/internal/disk"},
		{"globalstate", []string{"globalstate"}, "globalfix", "altoos/internal/fsck"},
		{"simtaint-flow", []string{"simtaint"}, "taintfix", "altoos/cmd/taintfix"},
		{"tracecover", []string{"tracecover"}, "tracefix", "altoos/internal/disk"},
		{"tracecover-scope", []string{"tracecover"}, "tracefix", "altoos/internal/scope"},
		// The transport-v2 rewrite made pup and fileserver the heaviest
		// emitters; the gate must keep firing under their virtual paths.
		{"tracecover-pup", []string{"tracecover"}, "tracefix", "altoos/internal/pup"},
		{"tracecover-fileserver", []string{"tracecover"}, "tracefix", "altoos/internal/fileserver"},
		// The cluster's audit daemon joined the replay and observability
		// contracts in the same PR; the gate must fire under its path too.
		{"tracecover-cluster", []string{"tracecover"}, "tracefix", "altoos/internal/cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := loadFixture(t, tc.dir, tc.virtual)
			diags := vet.Run(pkg, analyzersByName(t, tc.analyzers...))
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no findings at all", tc.dir)
			}
			for _, problem := range vet.CheckWant(pkg, diags) {
				t.Error(problem)
			}
		})
	}
}

// dropStaleAllows filters out the stale-allow findings the exempt-layout
// scope tests expect: a fixture's allow directive legitimately suppresses
// nothing when the fixture is loaded where its analyzer does not fire.
func dropStaleAllows(diags []vet.Diagnostic) (kept []vet.Diagnostic, stale int) {
	for _, d := range diags {
		if d.Analyzer == "allow" && strings.Contains(d.Message, "stale") {
			stale++
			continue
		}
		kept = append(kept, d)
	}
	return kept, stale
}

// TestDeterminismScope loads the determinism fixture under a cmd/ virtual
// path: entry points are exempt from both the rand-import ban and the
// wall-clock call-site bans, and the fixture's flows are domain-clean, so
// the same code must produce no findings.
func TestDeterminismScope(t *testing.T) {
	pkg := loadFixture(t, "determfix", "altoos/cmd/determfix")
	diags := vet.Run(pkg, analyzersByName(t, "determinism", "simtaint"))
	for _, d := range diags {
		t.Errorf("determinism/simtaint fired in exempt cmd/ scope: %s", d)
	}
}

// TestMapRangeScope loads the scheduler fixture outside the replay-critical
// packages: the map-iteration rule is scoped to those, so only the
// wall-clock finding (now simtaint's) survives the move.
func TestMapRangeScope(t *testing.T) {
	pkg := loadFixture(t, "schedfix", "altoos/internal/file")
	diags := vet.Run(pkg, analyzersByName(t, "determinism", "simtaint"))
	for _, d := range diags {
		if strings.Contains(d.Message, "map iteration") {
			t.Errorf("map-range rule fired outside the replay-critical packages: %s", d)
		}
	}
	if len(diags) != 1 || diags[0].Analyzer != "simtaint" {
		t.Errorf("got %d findings outside the scoped packages, want only simtaint's time.Now one: %v", len(diags), diags)
	}
}

// TestLabelCheckScope loads the labelcheck fixture as if it were the disk
// package itself, which is entitled to raw sector access.
func TestLabelCheckScope(t *testing.T) {
	pkg := loadFixture(t, "labelfix", "altoos/internal/disk2")
	// Under a non-exempt path it fires (see TestFixtures); under the real
	// disk path it must not. Same directory, different virtual location.
	exempt := loadFixture(t, "labelfix", "altoos/internal/scavenge")
	if diags := vet.Run(exempt, analyzersByName(t, "labelcheck")); len(diags) != 0 {
		t.Errorf("labelcheck fired in exempt scavenge scope: %v", diags)
	}
	if diags := vet.Run(pkg, analyzersByName(t, "labelcheck")); len(diags) == 0 {
		t.Error("labelcheck silent outside the exempt packages")
	}
}

// TestGoSpawnScope loads the spawn fixture under cmd/: entry points may run
// daemons, so the only finding is the fixture's own allow directive,
// reported stale because it suppresses nothing there.
func TestGoSpawnScope(t *testing.T) {
	pkg := loadFixture(t, "spawnfix", "altoos/cmd/spawnfix")
	diags, stale := dropStaleAllows(vet.Run(pkg, analyzersByName(t, "gospawn")))
	for _, d := range diags {
		t.Errorf("gospawn fired in exempt cmd/ scope: %s", d)
	}
	if stale != 1 {
		t.Errorf("got %d stale-allow findings in exempt scope, want 1 (the fixture's own directive)", stale)
	}
}

// TestChanOrderScope: the channel-order rules bind only the
// determinism-gated packages.
func TestChanOrderScope(t *testing.T) {
	pkg := loadFixture(t, "chanfix", "altoos/internal/chanfix")
	diags, stale := dropStaleAllows(vet.Run(pkg, analyzersByName(t, "chanorder")))
	for _, d := range diags {
		t.Errorf("chanorder fired outside the gated packages: %s", d)
	}
	if stale != 1 {
		t.Errorf("got %d stale-allow findings in exempt scope, want 1", stale)
	}
}

// TestGlobalStateScope: the frozen-globals rule binds only the
// determinism-gated packages.
func TestGlobalStateScope(t *testing.T) {
	pkg := loadFixture(t, "globalfix", "altoos/internal/globalfix")
	diags, stale := dropStaleAllows(vet.Run(pkg, analyzersByName(t, "globalstate")))
	for _, d := range diags {
		t.Errorf("globalstate fired outside the gated packages: %s", d)
	}
	if stale != 1 {
		t.Errorf("got %d stale-allow findings in exempt scope, want 1", stale)
	}
}

// TestTraceCoverScope: the observability lint binds only the traced
// packages.
func TestTraceCoverScope(t *testing.T) {
	pkg := loadFixture(t, "tracefix", "altoos/internal/tracefix")
	diags, stale := dropStaleAllows(vet.Run(pkg, analyzersByName(t, "tracecover")))
	for _, d := range diags {
		t.Errorf("tracecover fired outside the traced packages: %s", d)
	}
	if stale != 1 {
		t.Errorf("got %d stale-allow findings in exempt scope, want 1", stale)
	}
}

// TestSimTaintLayouts: the flow fixture under an internal/ path gains the
// call-site bans on top of its flow findings — the internal layout is
// strictly stricter than the cmd one TestFixtures checks.
func TestSimTaintLayouts(t *testing.T) {
	pkg := loadFixture(t, "taintfix", "altoos/internal/taintfix")
	diags := vet.Run(pkg, analyzersByName(t, "simtaint"))
	bans, flows := 0, 0
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "reads the host wall clock"):
			bans++
		case strings.Contains(d.Message, "flows into"):
			flows++
		}
	}
	if bans == 0 {
		t.Error("internal layout produced no call-site bans")
	}
	// The cmd layout has 5 flow findings (4 wants + 1 allowed); internal
	// keeps the same flows and suppresses the allowed one identically.
	if flows != 4 {
		t.Errorf("internal layout produced %d flow findings, want the same 4 as the cmd layout", flows)
	}
}

// TestProductionTreeClean is the gate the Makefile check target automates:
// the whole module, every analyzer, zero findings.
func TestProductionTreeClean(t *testing.T) {
	mod, err := vet.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mod.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	diags, _ := vet.RunAll(pkgs, vet.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestParallelRunDeterministic: the same tree analyzed with one worker and
// with many must produce byte-identical output — the parallel merge may not
// leak scheduling into the findings order.
func TestParallelRunDeterministic(t *testing.T) {
	render := func(workers int) string {
		mod, err := vet.LoadModule(".")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := mod.LoadParallel(workers, "./...")
		if err != nil {
			t.Fatal(err)
		}
		diags, _ := vet.RunAll(pkgs, vet.Analyzers())
		var b strings.Builder
		for _, d := range mod.JSONDiagnostics(diags) {
			b.WriteString(d.File)
			b.WriteByte(':')
			b.WriteString(d.Message)
			b.WriteByte('\n')
		}
		return b.String()
	}
	if one, eight := render(1), render(8); one != eight {
		t.Errorf("worker count changed the output:\n-- 1 worker --\n%s\n-- 8 workers --\n%s", one, eight)
	}
}

// TestRunExitCodes drives the CLI entry point the way the shell does.
func TestRunExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"labelcheck", "gospawn", "chanorder", "globalstate", "simtaint", "tracecover"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-run", "nosuch"}, &out, &errOut); code != 2 {
		t.Errorf("unknown analyzer exited %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Errorf("production tree not clean: exit %d\n%s", code, out.String())
	}
}

// TestJSONAndBaselineFlow drives the satellite machinery end to end on the
// production tree: -json emits a well-formed array, -write-baseline records
// it, and -baseline accepts the tree it just recorded.
func TestJSONAndBaselineFlow(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-json exited %d: %s", code, errOut.String())
	}
	var diags []vet.JSONDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("internal/sim not clean: %v", diags)
	}

	base := filepath.Join(t.TempDir(), "baseline.json")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", base, "-write-baseline", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-write-baseline exited %d: %s", code, errOut.String())
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", base, "-stats", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("-baseline gate exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "analyzer") || !strings.Contains(out.String(), "total") {
		t.Errorf("-stats printed no table:\n%s", out.String())
	}
}

// TestBaselineMasksLegacyFindings: a finding recorded in the baseline passes
// the gate; a tree with findings and no baseline fails it.
func TestBaselineMasksLegacyFindings(t *testing.T) {
	// The taint fixture under its shipped (cmd) layout has known findings;
	// drive the CLI against a temp module holding just that fixture.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixmod\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join("testdata", "src", "globalfix", "globalfix.go"))
	if err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "fsck")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "fix.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	var out, errOut bytes.Buffer
	if code := run([]string{"./..."}, &out, &errOut); code != 1 {
		t.Fatalf("dirty tree without baseline exited %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	base := filepath.Join(dir, "baseline.json")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", base, "-write-baseline", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-write-baseline exited %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &out, &errOut); code != 0 {
		t.Errorf("baselined tree exited %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
}
