// Command altovet runs the repo's domain-aware static analyzers: the
// invariants the paper's reliability story depends on (label-checked disk
// access, replayable simulated time, 16-bit word discipline, storage error
// etiquette, lock ordering) and the whole-program concurrency/determinism
// contract the fleet era is gated on (joined goroutines, deterministic
// channel use, frozen globals, clock-domain taint, trace coverage), enforced
// as a build gate.
//
// Usage:
//
//	altovet [-run name[,name...]] [-list] [-json] [-workers n]
//	        [-baseline file] [-write-baseline] [-stats] [packages]
//
// Packages default to ./... (the whole module). Exit status is 0 when the
// tree is clean (or every finding is covered by the baseline), 1 when any
// new finding is reported, and 2 on usage or load errors. -json emits the
// findings as a stable-ordered JSON array; the same shape is the baseline
// format, so -write-baseline records the current findings for -baseline to
// compare against while a legacy haul is burned down. -stats prints an
// informational per-analyzer table of finding/allow counts against the
// baseline. Findings can be suppressed, with a mandatory reason, by
//
//	//altovet:allow <analyzer>[,<analyzer>...] <reason>
//
// on the flagged line or the line above; a directive that suppresses nothing
// is itself reported as stale. See DESIGN.md, "Correctness tooling".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"altoos/internal/vet"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its dependencies injected, so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("altovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (stable order)")
	baseline := fs.String("baseline", "", "baseline file; only findings not covered by it fail the gate")
	writeBaseline := fs.Bool("write-baseline", false, "write current findings to -baseline and exit")
	stats := fs.Bool("stats", false, "print per-analyzer finding/allow counts (informational)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "package load/analysis worker pool size")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := vet.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*vet.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "altovet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "altovet: %v\n", err)
		return 2
	}
	mod, err := vet.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "altovet: %v\n", err)
		return 2
	}
	pkgs, err := mod.LoadParallel(*workers, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "altovet: %v\n", err)
		return 2
	}
	diags, runStats := vet.RunAll(pkgs, analyzers)
	current := mod.JSONDiagnostics(diags)

	if *writeBaseline {
		if *baseline == "" {
			fmt.Fprintln(stderr, "altovet: -write-baseline needs -baseline <file>")
			return 2
		}
		if err := vet.WriteBaseline(*baseline, current); err != nil {
			fmt.Fprintf(stderr, "altovet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "altovet: wrote %d finding(s) to %s\n", len(current), *baseline)
		return 0
	}

	fresh := current
	var base []vet.JSONDiagnostic
	resolved := 0
	if *baseline != "" {
		base, err = vet.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "altovet: %v\n", err)
			return 2
		}
		fresh, resolved = vet.CompareBaseline(base, current)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if current == nil {
			current = []vet.JSONDiagnostic{}
		}
		if err := enc.Encode(current); err != nil {
			fmt.Fprintf(stderr, "altovet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if *stats {
		printStats(stdout, runStats, base)
	}
	if resolved > 0 {
		fmt.Fprintf(stderr, "altovet: %d baseline finding(s) no longer fire; refresh with -baseline %s -write-baseline\n", resolved, *baseline)
	}
	if len(fresh) > 0 {
		what := "finding(s)"
		if *baseline != "" {
			what = "finding(s) not in baseline"
		}
		fmt.Fprintf(stderr, "altovet: %d %s\n", len(fresh), what)
		return 1
	}
	return 0
}

// printStats renders the informational per-analyzer table `make vet-stats`
// shows: surviving findings, suppressions in use, and how many findings the
// checked-in baseline still carries.
func printStats(w io.Writer, s *vet.Stats, baseline []vet.JSONDiagnostic) {
	basePer := map[string]int{}
	for _, d := range baseline {
		basePer[d.Analyzer]++
	}
	names := map[string]bool{}
	for _, a := range vet.Analyzers() {
		names[a.Name] = true
	}
	for n := range s.Findings {
		names[n] = true
	}
	for n := range s.Allowed {
		names[n] = true
	}
	for n := range basePer {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	fmt.Fprintf(w, "%-12s %9s %9s %9s\n", "analyzer", "findings", "allowed", "baseline")
	totF, totA, totB := 0, 0, 0
	for _, n := range ordered {
		fmt.Fprintf(w, "%-12s %9d %9d %9d\n", n, s.Findings[n], s.Allowed[n], basePer[n])
		totF += s.Findings[n]
		totA += s.Allowed[n]
		totB += basePer[n]
	}
	fmt.Fprintf(w, "%-12s %9d %9d %9d\n", "total", totF, totA, totB)
}
