// Command altovet runs the repo's domain-aware static analyzers: the
// invariants the paper's reliability story depends on (label-checked disk
// access, replayable simulated time, 16-bit word discipline, storage error
// etiquette, lock ordering), enforced as a build gate.
//
// Usage:
//
//	altovet [-run name[,name...]] [-list] [packages]
//
// Packages default to ./... (the whole module). Exit status is 0 when the
// tree is clean, 1 when any finding is reported, and 2 on usage or load
// errors. Findings can be suppressed, with a mandatory reason, by
//
//	//altovet:allow <analyzer> <reason>
//
// on the flagged line or the line above. See DESIGN.md, "Correctness
// tooling".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"altoos/internal/vet"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its dependencies injected, so tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("altovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := vet.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*vet.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "altovet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "altovet: %v\n", err)
		return 2
	}
	mod, err := vet.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "altovet: %v\n", err)
		return 2
	}
	pkgs, err := mod.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "altovet: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		for _, d := range vet.Run(pkg, analyzers) {
			fmt.Fprintln(stdout, d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "altovet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
