// altofleet drives the deterministic fleet scheduler (internal/fleet) from
// the command line: it boots a fleet of simulated Altos against one file
// server on the windowed parallel schedule and reports what the run did.
//
// The scheduler's contract is that the schedule is a pure function of the
// fleet — byte-identical across repeated runs and across -workers counts.
// -check proves it: the fleet runs twice at one worker and twice at eight,
// and every per-machine event stream and every metric must come out
// byte-identical, or the process exits nonzero. That is the make fleet-check
// gate.
//
// Usage:
//
//	altofleet -machines 100 -workers 8
//	altofleet -machines 25 -json
//	altofleet -check
//	altofleet -experiment e13      # any experiment, on one recorder per machine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"altoos/internal/experiments"
	"altoos/internal/scope"
	"altoos/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		machines   = flag.Int("machines", 100, "client Altos in the fleet (e14 only)")
		workers    = flag.Int("workers", 8, "worker-pool width for the windowed schedule")
		experiment = flag.String("experiment", "e14", "experiment id to run (see -list)")
		events     = flag.Int("events", trace.DefaultEvents, "per-machine ring capacity in events")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON instead of the table")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		check      = flag.Bool("check", false, "prove determinism: run at 1 and 8 workers, twice each, and fail on any byte difference")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *check {
		if err := selfCheck(*machines, *events); err != nil {
			log.Fatalf("altofleet: %v", err)
		}
		fmt.Printf("fleet-check ok: %d-machine schedule byte-identical across runs and worker counts\n", *machines)
		return
	}

	res, fl, err := run(*experiment, *machines, *workers, *events)
	if err != nil {
		log.Fatalf("altofleet: %v", err)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, res); err != nil {
			log.Fatalf("altofleet: %v", err)
		}
		return
	}
	fmt.Println(res.Table())
	ms := fl.Machines()
	fmt.Printf("fleet: %d machines, %d workers\n", len(ms), *workers)
	var total int
	for _, m := range ms {
		total += m.Rec.Len()
	}
	fmt.Printf("traced: %d events across the fleet\n", total)
}

// run executes the experiment with one recorder per machine. The e14 entry
// is parameterized by fleet size and worker count; every other experiment
// runs at its registered scale.
func run(id string, machines, workers, events int) (*experiments.Result, *scope.Fleet, error) {
	fl := scope.NewFleet(events)
	var res *experiments.Result
	var err error
	if strings.EqualFold(id, "e14") {
		res, err = experiments.E14FanIn(machines, workers, fl.Machine)
	} else {
		res, err = experiments.RunScoped(id, fl.Machine)
	}
	if err != nil {
		return nil, nil, err
	}
	return res, fl, nil
}

// snapshot flattens a run — every machine's full event stream plus every
// metric — into one byte slice, the artifact selfCheck compares.
func snapshot(machines, workers, events int) ([]byte, error) {
	res, fl, err := run("e14", machines, workers, events)
	if err != nil {
		return nil, fmt.Errorf("workers=%d: %w", workers, err)
	}
	var b strings.Builder
	ms := fl.Machines()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	for _, m := range ms {
		fmt.Fprintf(&b, "== %s events=%d\n", m.Name, m.Rec.Len())
		for _, ev := range m.Rec.Events() {
			fmt.Fprintf(&b, "%d %d %d %s %d %d %d\n", ev.T, ev.Dur, ev.Kind, ev.Name, ev.A0, ev.A1, ev.Flow)
		}
	}
	keys := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "metric %s %v\n", k, res.Metrics[k])
	}
	return []byte(b.String()), nil
}

// selfCheck is the fleet-check gate: the same fleet runs twice at one worker
// and twice at eight, and every event stream and metric must be
// byte-identical across all four runs.
func selfCheck(machines, events int) error {
	var base []byte
	var baseLabel string
	for i, workers := range []int{1, 1, 8, 8} {
		snap, err := snapshot(machines, workers, events)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("run %d (workers=%d)", i+1, workers)
		if base == nil {
			base, baseLabel = snap, label
			continue
		}
		if string(snap) != string(base) {
			return fmt.Errorf("schedule diverged: %s differs from %s (%d vs %d bytes)", label, baseLabel, len(snap), len(base))
		}
	}
	return nil
}

// writeJSON emits the result as one stable JSON document: identification,
// the human-readable rows, and the numeric metrics (keys sorted by
// encoding/json).
func writeJSON(w *os.File, res *experiments.Result) error {
	type row struct {
		Name  string `json:"name"`
		Value string `json:"value"`
	}
	doc := struct {
		ID      string             `json:"id"`
		Title   string             `json:"title"`
		Claim   string             `json:"claim"`
		Rows    []row              `json:"rows"`
		Metrics map[string]float64 `json:"metrics"`
	}{ID: res.ID, Title: res.Title, Claim: res.Claim, Metrics: res.Metrics}
	for _, r := range res.Rows {
		doc.Rows = append(doc.Rows, row{Name: r.Label, Value: r.Value})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
