// altobench regenerates every quantitative claim in the paper — the
// reproduction's tables. Each experiment builds its own workload on a fresh
// simulated machine and prints the paper's sentence next to the measured
// shape. See EXPERIMENTS.md for the claim-by-claim comparison.
//
// Usage:
//
//	altobench           run all experiments
//	altobench E3 E6     run a subset by id
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"altoos/internal/experiments"
)

func main() {
	log.SetFlags(0)
	funcs := map[string]func() (*experiments.Result, error){
		"E1": experiments.E1RawTransfer,
		"E2": experiments.E2AllocFreeCost,
		"E3": experiments.E3Scavenge,
		"E4": experiments.E4Compaction,
		"E5": experiments.E5HintLadder,
		"E6": experiments.E6WorldSwap,
		"E7": experiments.E7Junta,
		"E8": experiments.E8Robustness,
		"E9": experiments.E9InstalledHints,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}

	want := os.Args[1:]
	if len(want) == 0 {
		want = order
	}
	fmt.Println("Reproducing the quantitative claims of Lampson & Sproull,")
	fmt.Println("\"An Open Operating System for a Single-User Machine\" (SOSP 1979).")
	fmt.Println("All times are simulated (virtual disk/CPU clock).")
	fmt.Println()
	for _, id := range want {
		f, ok := funcs[strings.ToUpper(id)]
		if !ok {
			log.Fatalf("unknown experiment %q (have %s)", id, strings.Join(order, " "))
		}
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(res.Table())
	}
}
