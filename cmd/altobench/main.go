// altobench regenerates every quantitative claim in the paper — the
// reproduction's tables. Each experiment builds its own workload on a fresh
// simulated machine and prints the paper's sentence next to the measured
// shape. See EXPERIMENTS.md for the claim-by-claim comparison.
//
// Usage:
//
//	altobench [-cpuprofile file] [-memprofile file] [ids...]
//
//	altobench           run all experiments
//	altobench E3 E6     run a subset by id
//
// The profile flags capture host-side pprof profiles of the experiment run:
// the simulated quantities never depend on the host, but the wall-clock cost
// of producing them does, and the profiles are how the storage hot path is
// kept allocation-free (see DESIGN.md, "Chained transfers").
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"altoos/internal/experiments"
)

func main() {
	log.SetFlags(0)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the run to `file`")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	funcs := map[string]func() (*experiments.Result, error){
		"E1":  experiments.E1RawTransfer,
		"E2":  experiments.E2AllocFreeCost,
		"E3":  experiments.E3Scavenge,
		"E4":  experiments.E4Compaction,
		"E5":  experiments.E5HintLadder,
		"E6":  experiments.E6WorldSwap,
		"E7":  experiments.E7Junta,
		"E8":  experiments.E8Robustness,
		"E9":  experiments.E9InstalledHints,
		"E10": experiments.E10LoadedServer,
		"E11": experiments.E11LossSweep,
		"E12": experiments.E12CrashSweep,
		"E13": experiments.E13Saturation,
		"E14": experiments.E14FleetFanIn,
		"E15": experiments.E15ClusterAudit,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}

	want := flag.Args()
	if len(want) == 0 {
		want = order
	}
	fmt.Println("Reproducing the quantitative claims of Lampson & Sproull,")
	fmt.Println("\"An Open Operating System for a Single-User Machine\" (SOSP 1979).")
	fmt.Println("All times are simulated (virtual disk/CPU clock).")
	fmt.Println()
	for _, id := range want {
		f, ok := funcs[strings.ToUpper(id)]
		if !ok {
			log.Fatalf("unknown experiment %q (have %s)", id, strings.Join(order, " "))
		}
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(res.Table())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC() // flush accounting so the profile shows live + total allocation
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
}
