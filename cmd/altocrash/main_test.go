package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"altoos/internal/crashpoint"
)

// TestDefaultWorkloadSweepRecovers runs exactly what `altocrash -points 16
// -torn` would: the default workload, sampled points, torn writes on. Every
// point must recover — this is the same property the Makefile smoke sweep
// gates CI on.
func TestDefaultWorkloadSweepRecovers(t *testing.T) {
	w, ok := crashpoint.Lookup("journaled-insert")
	if !ok {
		t.Fatal("default workload journaled-insert not registered")
	}
	res, err := crashpoint.Explore(w, crashpoint.Options{Points: 16, Workers: 4, Torn: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent() {
		b, _ := res.JSON()
		t.Fatalf("sweep found unrecovered crash points:\n%s", b)
	}
}

// TestReportJSONIsStableAndParseable pins the report format the CI gate and
// benchdiff consumers read: valid JSON, byte-identical across runs, with
// the fields the docs promise.
func TestReportJSONIsStableAndParseable(t *testing.T) {
	w, _ := crashpoint.Lookup("dir-insert")
	run := func() []byte {
		res, err := crashpoint.Explore(w, crashpoint.Options{Points: 8, Workers: 4, Torn: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := run(), run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("two identical sweeps produced different report bytes")
	}
	var rep struct {
		Workload string `json:"workload"`
		Writes   int64  `json:"writes"`
		Clean    int    `json:"clean"`
		Outcomes []struct {
			Point      int  `json:"point"`
			Consistent bool `json:"consistent"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Workload != "dir-insert" || rep.Writes == 0 || len(rep.Outcomes) == 0 {
		t.Fatalf("report missing promised fields: %s", b1)
	}
	if rep.Clean != len(rep.Outcomes) {
		t.Fatalf("clean = %d of %d outcomes", rep.Clean, len(rep.Outcomes))
	}
}
