// altocrash sweeps a workload's crash points: it re-runs the workload once
// per point with simulated power failing after that write, reboots each
// wreck into the Scavenger, and has fsck certify every invariant. The sweep
// fans out over a pool of independent disk images and merges in schedule
// order, so the report is byte-identical for any -workers value. Exit
// status 1 means at least one crash point did not recover to a consistent
// pack — which makes the tool a CI gate for the paper's §3.5 claim.
//
// Usage:
//
//	altocrash -list
//	altocrash -workload journaled-insert -torn
//	altocrash -workload compact -points 64 -workers 8 -json report.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"altoos/internal/crashpoint"
)

func main() {
	log.SetFlags(0)
	var (
		workload = flag.String("workload", "journaled-insert", "workload to explore (see -list)")
		points   = flag.Int("points", 0, "crash points to sample; 0 explores every write")
		workers  = flag.Int("workers", 4, "independent disk images exploring concurrently")
		torn     = flag.Bool("torn", false, "also explore each point with the in-flight write landing garbled")
		jsonOut  = flag.String("json", "", "write the full JSON report to this file")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range crashpoint.Workloads() {
			fmt.Printf("%-18s %s\n", w.Name, w.Desc)
		}
		return
	}

	w, ok := crashpoint.Lookup(*workload)
	if !ok {
		log.Fatalf("altocrash: unknown workload %q (try -list)", *workload)
	}
	res, err := crashpoint.Explore(w, crashpoint.Options{
		Points:  *points,
		Workers: *workers,
		Torn:    *torn,
	})
	if err != nil {
		log.Fatalf("altocrash: %v", err)
	}

	if *jsonOut != "" {
		b, err := res.JSON()
		if err != nil {
			log.Fatalf("altocrash: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatalf("altocrash: %v", err)
		}
	}

	fmt.Printf("workload   %s\n", res.Workload)
	fmt.Printf("writes     %d in the explored window\n", res.Writes)
	fmt.Printf("points     %d explored (%d runs%s)\n", len(res.Points), len(res.Outcomes), tornNote(res.Torn))
	fmt.Printf("recovered  %d/%d\n", res.Clean, len(res.Outcomes))
	if !res.Consistent() {
		for _, o := range res.Outcomes {
			if o.Consistent {
				continue
			}
			fmt.Printf("\npoint %d (torn=%v) crash_at=%d:\n", o.Point, o.Torn, o.CrashAt)
			for _, v := range o.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
		os.Exit(1)
	}
}

func tornNote(torn bool) string {
	if torn {
		return ", clean + torn per point"
	}
	return ""
}
