// altotrace runs one experiment from internal/experiments with the flight
// recorder attached and exports what it saw: a Chrome trace_event JSON file
// (load it at chrome://tracing or https://ui.perfetto.dev) and a metrics
// snapshot. Every timestamp in the output is simulated time — the virtual
// clock the disk and network models advance — so two runs of the same
// experiment produce byte-identical traces.
//
// Usage:
//
//	altotrace -experiment e3 -out trace.json
//	altotrace -experiment e4 -out trace.json -metrics metrics.json
//	altotrace -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"altoos/internal/experiments"
	"altoos/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		experiment = flag.String("experiment", "", "experiment id to run (see -list)")
		out        = flag.String("out", "trace.json", "Chrome trace_event output file")
		metrics    = flag.String("metrics", "", "also write the metrics snapshot as JSON to this file")
		events     = flag.Int("events", trace.DefaultEvents, "flight-recorder ring capacity in events")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *experiment == "" {
		log.Fatalf("altotrace: -experiment is required (one of %s)", strings.Join(experiments.IDs(), ", "))
	}

	rec := trace.New(*events)
	res, err := experiments.Run(*experiment, rec)
	if err != nil {
		log.Fatalf("altotrace: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("altotrace: %v", err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		log.Fatalf("altotrace: write %s: %v", *out, err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("altotrace: close %s: %v", *out, err)
	}

	if *metrics != "" {
		m, err := os.Create(*metrics)
		if err != nil {
			log.Fatalf("altotrace: %v", err)
		}
		if err := rec.Snapshot().WriteJSON(m); err != nil {
			log.Fatalf("altotrace: write %s: %v", *metrics, err)
		}
		if err := m.Close(); err != nil {
			log.Fatalf("altotrace: close %s: %v", *metrics, err)
		}
	}

	fmt.Println(res.Table())
	fmt.Printf("wrote %d events to %s (%d dropped by the ring)\n", rec.Len(), *out, rec.Snapshot().Dropped)
	fmt.Println()
	fmt.Print(rec.Snapshot().Text())
}
