package main

import (
	"bytes"
	"strings"
	"testing"

	"altoos/internal/experiments"
	"altoos/internal/trace"
)

// runOnce executes one experiment with a fresh recorder and returns the
// exported trace and metrics bytes.
func runOnce(t *testing.T, id string) (traceJSON, metricsJSON []byte) {
	t.Helper()
	rec := trace.New(trace.DefaultEvents)
	if _, err := experiments.Run(id, rec); err != nil {
		t.Fatalf("run %s: %v", id, err)
	}
	var tb, mb bytes.Buffer
	if err := rec.WriteChromeTrace(&tb); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	if err := rec.Snapshot().WriteJSON(&mb); err != nil {
		t.Fatalf("write metrics: %v", err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestTracesAreByteIdentical is the determinism contract: the recorder is
// timed exclusively off the simulated clock, so two runs of the same
// experiment must export exactly the same bytes, trace and metrics alike.
func TestTracesAreByteIdentical(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e8", "e10", "e12", "e13"} {
		t.Run(id, func(t *testing.T) {
			t1, m1 := runOnce(t, id)
			t2, m2 := runOnce(t, id)
			if !bytes.Equal(t1, t2) {
				t.Fatalf("%s: two runs exported different trace bytes (%d vs %d bytes)", id, len(t1), len(t2))
			}
			if !bytes.Equal(m1, m2) {
				t.Fatalf("%s: two runs exported different metrics bytes:\n%s\n---\n%s", id, m1, m2)
			}
			if len(t1) == 0 || !bytes.Contains(t1, []byte(`"traceEvents"`)) {
				t.Fatalf("%s: trace export does not look like a Chrome trace: %.80s", id, t1)
			}
		})
	}
}

// TestTraceCarriesDiskEvents spot-checks that an experiment that touches the
// disk actually lands events and counters in the export.
func TestTraceCarriesDiskEvents(t *testing.T) {
	rec := trace.New(trace.DefaultEvents)
	if _, err := experiments.Run("e1", rec); err != nil {
		t.Fatalf("run e1: %v", err)
	}
	if rec.Len() == 0 {
		t.Fatal("e1 recorded no events")
	}
	snap := rec.Snapshot()
	if snap.Events == 0 {
		t.Fatal("snapshot reports zero events")
	}
	var sawOps bool
	for _, c := range snap.Counters {
		if c.Name == "disk.ops" && c.Value > 0 {
			sawOps = true
		}
	}
	if !sawOps {
		t.Fatalf("no disk.ops counter in snapshot: %s", snap.Text())
	}
	var tb bytes.Buffer
	if err := rec.WriteChromeTrace(&tb); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	for _, want := range []string{`"cat":"disk"`, `"ph":"X"`, `"thread_name"`} {
		if !strings.Contains(tb.String(), want) {
			t.Fatalf("trace export missing %s", want)
		}
	}
}

// TestUnknownExperiment keeps the by-id error path honest for the CLI.
func TestUnknownExperiment(t *testing.T) {
	if _, err := experiments.Run("e99", nil); err == nil {
		t.Fatal("expected an error for an unknown experiment id")
	}
}
