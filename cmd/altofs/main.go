// altofs manipulates simulated Alto disk packs stored as host image files —
// the moral equivalent of carrying a removable pack between machines.
//
// Usage:
//
//	altofs create <img> [diablo31|trident] [pack#]   format a fresh pack
//	altofs info <img>                                descriptor and usage
//	altofs ls <img>                                  list the root directory
//	altofs put <img> <hostfile> <name>               copy a host file in
//	altofs get <img> <name> [hostfile]               copy a file out (default: stdout)
//	altofs rm <img> <name>                           delete file and name
//	altofs scavenge <img>                            run the Scavenger
//	altofs scavenge-lowmem <img>                     same, with the disk-spill table
//	altofs compact <img>                             run the compacting scavenger
//	altofs damage <img> <n>                          corrupt n random labels (for demos)
//	altofs transfer <img> <img2> <name> [newname]    copy a file between packs
//	                                                 (the machine's second drive)
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"altoos"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/scavenge"
	"altoos/internal/sim"
	"altoos/internal/stream"
	"altoos/internal/zone"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 3 {
		usage()
	}
	cmd, img := os.Args[1], os.Args[2]
	args := os.Args[3:]

	if cmd == "create" {
		create(img, args)
		return
	}

	drv := loadImage(img)
	switch cmd {
	case "info":
		info(drv)
	case "ls":
		ls(drv)
	case "put":
		need(args, 2, "put <img> <hostfile> <name>")
		put(drv, args[0], args[1])
		saveImage(drv, img)
	case "get":
		need(args, 1, "get <img> <name> [hostfile]")
		out := ""
		if len(args) > 1 {
			out = args[1]
		}
		get(drv, args[0], out)
	case "rm":
		need(args, 1, "rm <img> <name>")
		rm(drv, args[0])
		saveImage(drv, img)
	case "scavenge":
		_, rep, err := altoos.Scavenge(drv)
		check(err)
		fmt.Println(rep)
		saveImage(drv, img)
	case "scavenge-lowmem":
		_, rep, err := scavenge.RunLowMemory(drv, 512)
		check(err)
		fmt.Printf("%s (spilled %d entries to %d borrowed sectors)\n",
			rep, rep.SpilledEntries, rep.SpillSectors)
		saveImage(drv, img)
	case "transfer":
		need(args, 2, "transfer <img> <img2> <name> [newname]")
		newName := args[1]
		if len(args) > 2 {
			newName = args[2]
		}
		// The second drive shares the machine's clock, as a real second
		// spindle would.
		f2, err := os.Open(args[0])
		check(err)
		drv2, err := disk.LoadImage(f2, drv.Clock())
		f2.Close()
		check(err)
		transfer(drv, drv2, args[1], newName)
		saveImage(drv2, args[0])
	case "compact":
		_, rep, err := altoos.Compact(drv)
		check(err)
		fmt.Println(rep)
		saveImage(drv, img)
	case "damage":
		need(args, 1, "damage <img> <n>")
		n, err := strconv.Atoi(args[0])
		check(err)
		r := sim.NewRand(uint64(os.Getpid()))
		for i := 0; i < n; i++ {
			drv.CorruptLabel(disk.VDA(r.Intn(drv.Geometry().NSectors())), r)
		}
		fmt.Printf("corrupted %d random labels; run 'altofs scavenge %s'\n", n, img)
		saveImage(drv, img)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: altofs <create|info|ls|put|get|rm|scavenge|compact|damage> <img> ...")
	os.Exit(2)
}

func need(args []string, n int, form string) {
	if len(args) < n {
		log.Fatalf("usage: altofs %s", form)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func create(img string, args []string) {
	g := disk.Diablo31()
	if len(args) > 0 && args[0] == "trident" {
		g = disk.Trident()
	}
	pack := disk.Word(1)
	if len(args) > 1 {
		n, err := strconv.Atoi(args[1])
		check(err)
		pack = disk.Word(n)
	}
	drv, err := disk.NewDrive(g, pack, nil)
	check(err)
	fs, err := file.Format(drv)
	check(err)
	_, err = dir.InitRoot(fs)
	check(err)
	check(fs.Flush())
	saveImage(drv, img)
	fmt.Printf("created %s: %v, pack %d\n", img, g, pack)
}

func loadImage(path string) *disk.Drive {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	drv, err := disk.LoadImage(f, nil)
	check(err)
	return drv
}

func saveImage(drv *disk.Drive, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	check(err)
	if err := drv.SaveImage(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	check(f.Close())
	check(os.Rename(tmp, path))
}

// mount attaches a file system, scavenging when the descriptor is damaged.
func mount(drv *disk.Drive) *file.FS {
	fs, err := file.Mount(drv)
	if err != nil {
		fmt.Fprintf(os.Stderr, "altofs: mount failed (%v); scavenging\n", err)
		fs, _, err = altoos.Scavenge(drv)
		check(err)
	}
	return fs
}

// rig builds the stream substrates for copying data.
func rig() (*mem.Memory, *zone.MemZone) {
	m := mem.New()
	z, err := zone.New(m, 0x4000, 0x4000)
	check(err)
	return m, z
}

func info(drv *disk.Drive) {
	fs := mount(drv)
	g := drv.Geometry()
	free := fs.FreeCount()
	fmt.Printf("geometry:   %v\n", g)
	fmt.Printf("pack:       %d\n", drv.Pack())
	fmt.Printf("root dir:   %v\n", fs.RootDir())
	fmt.Printf("descriptor: %v\n", fs.DescriptorFN())
	fmt.Printf("usage:      %d/%d pages busy (%d free)\n", g.NSectors()-free, g.NSectors(), free)
	fmt.Printf("next serial: %d\n", fs.Descriptor().NextSerial)
}

func ls(drv *disk.Drive) {
	fs := mount(drv)
	root, err := dir.OpenRoot(fs)
	check(err)
	entries, err := root.List()
	check(err)
	for _, e := range entries {
		size := -1
		if f, err := fs.Open(e.FN); err == nil {
			size = f.Size()
		}
		fmt.Printf("%-28s %8d  %v\n", e.Name, size, e.FN.FV)
	}
}

func put(drv *disk.Drive, hostfile, name string) {
	data, err := os.ReadFile(hostfile)
	check(err)
	fs := mount(drv)
	root, err := dir.OpenRoot(fs)
	check(err)
	var f *file.File
	if fn, err := root.Lookup(name); err == nil {
		f, err = fs.Open(fn)
		check(err)
	} else {
		f, err = fs.Create(name)
		check(err)
		check(root.Insert(name, f.FN()))
	}
	m, z := rig()
	s, err := stream.NewDisk(f, z, m, stream.WriteMode)
	check(err)
	for _, b := range data {
		check(s.Put(b))
	}
	check(s.Close())
	check(fs.Flush())
	fmt.Printf("put %s -> %s (%d bytes)\n", hostfile, name, len(data))
}

func get(drv *disk.Drive, name, hostfile string) {
	fs := mount(drv)
	fn, err := dir.ResolveName(fs, name)
	check(err)
	f, err := fs.Open(fn)
	check(err)
	m, z := rig()
	s, err := stream.NewDisk(f, z, m, stream.ReadMode)
	check(err)
	data, err := stream.ReadAll(s)
	check(err)
	check(s.Close())
	if hostfile == "" {
		os.Stdout.Write(data)
		return
	}
	check(os.WriteFile(hostfile, data, 0o644))
	fmt.Printf("get %s -> %s (%d bytes)\n", name, hostfile, len(data))
}

// transfer streams a file from one pack to another — the two-drive machine
// of §2. Both file systems run over the same stream and zone packages; only
// the disk objects differ, which is the openness point.
func transfer(src, dst *disk.Drive, name, newName string) {
	sfs := mount(src)
	dfs := mount(dst)
	fn, err := dir.ResolveName(sfs, name)
	check(err)
	sf, err := sfs.Open(fn)
	check(err)
	m, z := rig()
	in, err := stream.NewDisk(sf, z, m, stream.ReadMode)
	check(err)
	defer in.Close()

	droot, err := dir.OpenRoot(dfs)
	check(err)
	var df *file.File
	if dfn, err := droot.Lookup(newName); err == nil {
		df, err = dfs.Open(dfn)
		check(err)
	} else {
		df, err = dfs.Create(newName)
		check(err)
		check(droot.Insert(newName, df.FN()))
	}
	out, err := stream.NewDisk(df, z, m, stream.WriteMode)
	check(err)
	n, err := stream.Pump(out, in)
	check(err)
	check(out.Close())
	check(dfs.Flush())
	fmt.Printf("transferred %s -> %s (%d bytes)\n", name, newName, n)
}

func rm(drv *disk.Drive, name string) {
	fs := mount(drv)
	root, err := dir.OpenRoot(fs)
	check(err)
	fn, err := root.Lookup(name)
	check(err)
	f, err := fs.Open(fn)
	check(err)
	check(f.Delete())
	check(root.Remove(name))
	check(fs.Flush())
	fmt.Printf("rm %s\n", name)
}
