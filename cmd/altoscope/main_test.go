package main

import (
	"testing"

	"altoos/internal/experiments"
	"altoos/internal/scope"
	"altoos/internal/trace"
)

// runE10Fleet runs E10 with one recorder per machine.
func runE10Fleet(t *testing.T) []scope.MachineTrace {
	t.Helper()
	fleet := scope.NewFleet(trace.DefaultEvents)
	if _, err := experiments.RunScoped("e10", fleet.Machine); err != nil {
		t.Fatal(err)
	}
	return fleet.Machines()
}

// TestE10SessionsLinkToClientRequests is the causal-chain acceptance bar: in
// E10 (8 clients, 10% loss) every fileserver session span the server records
// carries a flow ID allocated by — and stamped on a request span of — one of
// the client machines.
func TestE10SessionsLinkToClientRequests(t *testing.T) {
	machines := runE10Fleet(t)
	clientFlows := map[int64]string{}
	var server *trace.Recorder
	for _, m := range machines {
		if m.Name == "server" {
			server = m.Rec
			continue
		}
		for _, ev := range m.Rec.Events() {
			if ev.Kind == trace.KindFSSession && ev.Name == "client" && ev.Flow != 0 {
				clientFlows[ev.Flow] = m.Name
			}
		}
	}
	if server == nil {
		t.Fatal("no server machine in the fleet")
	}
	if len(clientFlows) != 32 {
		t.Fatalf("got %d client request flows, want 32 (8 clients x 4 transfers)", len(clientFlows))
	}
	sessions, requests := 0, 0
	for _, ev := range server.Events() {
		switch ev.Kind {
		case trace.KindFSSession:
			sessions++
			if ev.Flow == 0 {
				t.Errorf("server session span (peer %d) carries no flow", ev.A0)
			} else if _, ok := clientFlows[ev.Flow]; !ok {
				t.Errorf("server session flow %d matches no client request", ev.Flow)
			}
		case trace.KindFSRequest:
			requests++
			if _, ok := clientFlows[ev.Flow]; !ok {
				t.Errorf("server %s request flow %d matches no client request", ev.Name, ev.Flow)
			}
		}
	}
	if sessions != 8 {
		t.Errorf("server recorded %d session spans, want 8", sessions)
	}
	if requests != 32 {
		t.Errorf("server recorded %d request spans, want 32", requests)
	}
}

// TestE10FaultsStayOnTheFlow asserts injected loss renders on the causal
// chain: the wire's fault verdicts reference flows that client requests own.
func TestE10FaultsStayOnTheFlow(t *testing.T) {
	machines := runE10Fleet(t)
	clientFlows := map[int64]bool{}
	var wire *trace.Recorder
	for _, m := range machines {
		if m.Name == "wire" {
			wire = m.Rec
			continue
		}
		for _, ev := range m.Rec.Events() {
			if ev.Flow != 0 {
				clientFlows[ev.Flow] = true
			}
		}
	}
	faults, onFlow := 0, 0
	for _, ev := range wire.Events() {
		if ev.Kind != trace.KindEtherFault {
			continue
		}
		faults++
		if ev.Flow != 0 && clientFlows[ev.Flow] {
			onFlow++
		}
	}
	if faults == 0 {
		t.Fatal("a 10%-loss run recorded no fault verdicts")
	}
	// Only handshake-phase faults (Open/Close control packets before any
	// request) may legitimately lack a flow; data-phase faults dominate.
	if onFlow*2 < faults {
		t.Errorf("only %d of %d fault verdicts land on a known flow", onFlow, faults)
	}
}

// TestE10ProfileAccountsSpanTime pins the profiler acceptance bar: each
// machine's cumulative root time accounts for at least 95% of its covered
// span time (it is ≥100% by construction — roots span at least the union).
func TestE10ProfileAccountsSpanTime(t *testing.T) {
	merged := scope.Merge(runE10Fleet(t), 4)
	for _, p := range merged.MachineProfiles() {
		if p.Spans == 0 {
			t.Errorf("machine %s recorded no spans", p.Machine)
			continue
		}
		if float64(p.Total) < 0.95*float64(p.Covered) {
			t.Errorf("machine %s: profile accounts %v of %v covered (<95%%)",
				p.Machine, p.Total, p.Covered)
		}
	}
}

// TestE10MergedArtifactsAreByteIdentical is the determinism acceptance bar,
// the same property make scope-check gates from the command line: two runs,
// reversed merge order and different worker counts, identical bytes.
func TestE10MergedArtifactsAreByteIdentical(t *testing.T) {
	if err := selfCheck("e10", trace.DefaultEvents, 20); err != nil {
		t.Fatal(err)
	}
}
