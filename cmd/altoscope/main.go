// altoscope runs one experiment as a fleet — every simulated machine
// recording into its own flight recorder — and merges what they saw into
// the cross-machine observability artifacts:
//
//   - <id>.trace.json: one Chrome trace_event document, one process per
//     machine on the shared simulated-time axis, causal flows drawn as
//     arrows across machines (load it at chrome://tracing or
//     https://ui.perfetto.dev);
//   - <id>.collapsed: the sim-time profile in collapsed-stack flamegraph
//     format, one leading frame per machine;
//   - <id>.profile.txt: the fleet-aggregated top table by self time;
//   - <id>.metrics.txt: each machine's counters and histograms.
//
// Every artifact is a deterministic function of the workload: byte-identical
// across runs, merge input orders and -workers counts. -check proves it by
// running everything twice and comparing, which is the make scope-check gate.
//
// Usage:
//
//	altoscope -experiment e10 -out .
//	altoscope -experiment e10 -check
//	altoscope -list
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"altoos/internal/experiments"
	"altoos/internal/scope"
	"altoos/internal/trace"
)

func main() {
	log.SetFlags(0)
	var (
		experiment = flag.String("experiment", "e10", "experiment id to run (see -list)")
		out        = flag.String("out", ".", "directory for the merged artifacts")
		workers    = flag.Int("workers", 4, "parallel per-machine merge workers")
		top        = flag.Int("top", 20, "rows in the top-by-self-time table")
		events     = flag.Int("events", trace.DefaultEvents, "per-machine ring capacity in events")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		check      = flag.Bool("check", false, "run twice and fail unless all artifacts are byte-identical")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *check {
		if err := selfCheck(*experiment, *events, *top); err != nil {
			log.Fatalf("altoscope: %v", err)
		}
		fmt.Printf("scope-check ok: %s artifacts byte-identical across runs, merge orders and worker counts\n", *experiment)
		return
	}

	res, fleet, err := runFleet(*experiment, *events)
	if err != nil {
		log.Fatalf("altoscope: %v", err)
	}
	machines := fleet.Machines()
	merged := scope.Merge(machines, *workers)

	traceBytes, collapsed, topTable, err := render(merged, *top)
	if err != nil {
		log.Fatalf("altoscope: %v", err)
	}
	outputs := []struct {
		name string
		data []byte
	}{
		{*experiment + ".trace.json", traceBytes},
		{*experiment + ".collapsed", collapsed},
		{*experiment + ".profile.txt", topTable},
		{*experiment + ".metrics.txt", metricsText(machines)},
	}
	for _, o := range outputs {
		path := filepath.Join(*out, o.name)
		if err := os.WriteFile(path, o.data, 0o644); err != nil {
			log.Fatalf("altoscope: %v", err)
		}
	}

	fmt.Println(res.Table())
	fmt.Printf("fleet: %d machines", len(machines))
	for _, m := range machines {
		fmt.Printf(" %s(%d)", m.Name, m.Rec.Len())
	}
	fmt.Println()
	for _, p := range merged.MachineProfiles() {
		fmt.Printf("profile %-10s %4d spans, %10.3f ms accounted of %10.3f ms covered\n",
			p.Machine, p.Spans, float64(p.Total)/1e6, float64(p.Covered)/1e6)
	}
	fmt.Println()
	os.Stdout.Write(topTable)
	for _, o := range outputs {
		fmt.Printf("wrote %s\n", filepath.Join(*out, o.name))
	}
}

// runFleet executes the experiment with one recorder per machine.
func runFleet(id string, events int) (*experiments.Result, *scope.Fleet, error) {
	fleet := scope.NewFleet(events)
	res, err := experiments.RunScoped(id, fleet.Machine)
	if err != nil {
		return nil, nil, err
	}
	return res, fleet, nil
}

// render produces the three merged artifacts as byte slices.
func render(m *scope.Merged, top int) (traceJSON, collapsed, topTable []byte, err error) {
	var tb, cb, pb bytes.Buffer
	if err := m.WriteChrome(&tb); err != nil {
		return nil, nil, nil, err
	}
	if err := scope.WriteCollapsed(&cb, m.MachineProfiles()); err != nil {
		return nil, nil, nil, err
	}
	if err := scope.WriteTop(&pb, m.MachineProfiles(), top); err != nil {
		return nil, nil, nil, err
	}
	return tb.Bytes(), cb.Bytes(), pb.Bytes(), nil
}

// metricsText renders every machine's metrics snapshot, machines in fleet
// creation order.
func metricsText(machines []scope.MachineTrace) []byte {
	var b bytes.Buffer
	for _, m := range machines {
		fmt.Fprintf(&b, "== %s ==\n", m.Name)
		b.WriteString(m.Rec.Snapshot().Text())
	}
	return b.Bytes()
}

// selfCheck is the scope-check gate: the experiment runs twice on fresh
// fleets, and every artifact must come out byte-identical across the two
// runs, across merge input orders (reversed machine list), and across
// worker counts (1 vs 8).
func selfCheck(id string, events, top int) error {
	_, fleet1, err := runFleet(id, events)
	if err != nil {
		return err
	}
	_, fleet2, err := runFleet(id, events)
	if err != nil {
		return err
	}
	m1 := fleet1.Machines()
	m2 := fleet2.Machines()
	reversed := make([]scope.MachineTrace, len(m1))
	for i, m := range m1 {
		reversed[len(m1)-1-i] = m
	}

	variants := []struct {
		label    string
		machines []scope.MachineTrace
		workers  int
	}{
		{"run 1, workers 1", m1, 1},
		{"run 1, workers 8", m1, 8},
		{"run 1, reversed merge order", reversed, 4},
		{"run 2, workers 4", m2, 4},
	}
	var base [3][]byte
	for i, v := range variants {
		t, c, p, err := render(scope.Merge(v.machines, v.workers), top)
		if err != nil {
			return fmt.Errorf("%s: %w", v.label, err)
		}
		if i == 0 {
			base = [3][]byte{t, c, p}
			continue
		}
		for j, pair := range [][2][]byte{{base[0], t}, {base[1], c}, {base[2], p}} {
			names := [3]string{"merged trace", "collapsed profile", "top table"}
			if !bytes.Equal(pair[0], pair[1]) {
				return fmt.Errorf("%s differs between %q and %q", names[j], variants[0].label, v.label)
			}
		}
	}
	return nil
}
