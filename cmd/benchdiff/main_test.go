package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldSnap = `goos: linux
BenchmarkE1RawTransfer 	1	2377026 ns/op	1.268 sim_seconds_64kwords	51669 words_per_sec	2834384 B/op	3513 allocs/op
BenchmarkE3Scavenge    	1	30954497 ns/op	30.76 scavenge_seconds_Diablo31	22965928 B/op	250367 allocs/op
PASS
`

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCleanDiffPasses(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_2026-01-01.json", oldSnap)
	// Simulated metrics improve, host metrics regress wildly: still clean.
	write(t, dir, "BENCH_2026-01-02.json", `goos: linux
BenchmarkE1RawTransfer 	1	9977026 ns/op	1.268 sim_seconds_64kwords	51669 words_per_sec	9834384 B/op	9513 allocs/op
BenchmarkE3Scavenge    	1	90954497 ns/op	26.00 scavenge_seconds_Diablo31	92965928 B/op	950367 allocs/op
PASS
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("clean diff exited %d\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "no simulated-time regressions") {
		t.Errorf("missing success line:\n%s", out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_2026-01-01.json", oldSnap)
	// scavenge_seconds worsens 10%, words_per_sec drops 10%: two regressions.
	write(t, dir, "BENCH_2026-01-02.json", `goos: linux
BenchmarkE1RawTransfer 	1	2377026 ns/op	1.268 sim_seconds_64kwords	46502 words_per_sec	2834384 B/op	3513 allocs/op
BenchmarkE3Scavenge    	1	30954497 ns/op	33.84 scavenge_seconds_Diablo31	22965928 B/op	250367 allocs/op
PASS
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("regression exited %d, want 1\n%s", code, out.String())
	}
	for _, want := range []string{"words_per_sec", "scavenge_seconds_Diablo31", "REGRESSION"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestToleranceAbsorbsNoise(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_2026-01-01.json", oldSnap)
	// 1% worse is within the default 2% tolerance.
	write(t, dir, "BENCH_2026-01-02.json", `goos: linux
BenchmarkE1RawTransfer 	1	2377026 ns/op	1.281 sim_seconds_64kwords	51669 words_per_sec	2834384 B/op	3513 allocs/op
BenchmarkE3Scavenge    	1	30954497 ns/op	30.76 scavenge_seconds_Diablo31	22965928 B/op	250367 allocs/op
PASS
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("1%% drift exited %d, want 0 under default tolerance\n%s", code, out.String())
	}
	if code := run([]string{"-dir", dir, "-tolerance", "0.5"}, &out, &errOut); code != 1 {
		t.Errorf("1%% drift exited %d under 0.5%% tolerance, want 1", code)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_2026-01-01.json", oldSnap)
	write(t, dir, "BENCH_2026-01-02.json", `goos: linux
BenchmarkE1RawTransfer 	1	2377026 ns/op	1.268 sim_seconds_64kwords	51669 words_per_sec	2834384 B/op	3513 allocs/op
PASS
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("dropped benchmark exited %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "gone from the new snapshot") {
		t.Errorf("missing-benchmark line absent:\n%s", out.String())
	}
}

func TestNothingToCompare(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_2026-01-01.json", oldSnap)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("single snapshot exited %d, want 0", code)
	}
	if !strings.Contains(out.String(), "nothing to compare") {
		t.Errorf("missing explanation:\n%s", out.String())
	}
}

func TestDirectionTable(t *testing.T) {
	cases := map[string]metricDir{
		"ns/op":                            hostDependent,
		"B/op":                             hostDependent,
		"allocs/op":                        hostDependent,
		"scavenge_seconds_Diablo31":        lowerBetter,
		"ms/page_consecutive":              lowerBetter,
		"alloc_overhead_revs":              lowerBetter,
		"cold_ms":                          lowerBetter,
		"map_lie_retries":                  lowerBetter,
		"words_per_sec":                    higherBetter,
		"aged_speedup":                     higherBetter,
		"warm_advantage":                   higherBetter,
		"wild_writes_rejected_pct":         higherBetter,
		"max_words_freed":                  higherBetter,
		"goodput_words_per_sec_loss10":     higherBetter,
		"goodput_words_per_sec_total":      higherBetter,
		"jain_fairness_pct":                higherBetter,
		"retransmitted_words_ratio_loss20": lowerBetter,
		"wire_idle_frac_loss20":            lowerBetter,
		"files_lost":                       lowerBetter,
		"bytes_corrupted":                  lowerBetter,
		"audit_rounds_to_heal":             lowerBetter,
		"divergence_detected":              exact,
		"full_resident_words":              informational,
		"heals":                            informational,
	}
	for unit, want := range cases {
		if got := direction(unit); got != want {
			t.Errorf("direction(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestExactMetricFailsOnAnyChange(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_2026-01-01.json", `goos: linux
BenchmarkE15ClusterAudit 	1	118214397 ns/op	0 files_lost	0 bytes_corrupted	242.0 divergence_detected	31.00 heals	1.000 audit_rounds_to_heal	855.4 sim_seconds
PASS
`)
	// divergence_detected moves by under half a percent — far inside any
	// tolerance — but it is an exact metric: the audit saw different damage,
	// which means the deterministic schedule changed.
	write(t, dir, "BENCH_2026-01-02.json", `goos: linux
BenchmarkE15ClusterAudit 	1	118214397 ns/op	0 files_lost	0 bytes_corrupted	241.0 divergence_detected	31.00 heals	1.000 audit_rounds_to_heal	855.4 sim_seconds
PASS
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir, "-tolerance", "50"}, &out, &errOut); code != 1 {
		t.Fatalf("exact-metric drift exited %d, want 1 even at 50%% tolerance\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "exact metric moved") {
		t.Errorf("missing exact-metric explanation:\n%s", out.String())
	}
	// A single lost file is a regression: files_lost is lower-better and the
	// old value was zero, so any increase reads as 100% worse.
	write(t, dir, "BENCH_2026-01-03.json", `goos: linux
BenchmarkE15ClusterAudit 	1	118214397 ns/op	1.000 files_lost	0 bytes_corrupted	241.0 divergence_detected	31.00 heals	1.000 audit_rounds_to_heal	855.4 sim_seconds
PASS
`)
	out.Reset()
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("files_lost 0 -> 1 exited %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "files_lost") {
		t.Errorf("missing files_lost regression line:\n%s", out.String())
	}
	// Unchanged exact and zero-held metrics stay clean.
	write(t, dir, "BENCH_2026-01-04.json", `goos: linux
BenchmarkE15ClusterAudit 	1	918214397 ns/op	1.000 files_lost	0 bytes_corrupted	241.0 divergence_detected	31.00 heals	1.000 audit_rounds_to_heal	855.4 sim_seconds
PASS
`)
	out.Reset()
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("identical simulated metrics exited %d, want 0\n%s", code, out.String())
	}
}

func TestWallCoupledTolerance(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_2026-01-01.json", `goos: linux
BenchmarkE14FleetFanIn 	1	937026 ns/op	158.5 sim_seconds	37730 scheduler_steps	40000 events_per_sec	1.00 speedup_x8
PASS
`)
	// Host-coupled throughput down 30%: inside the relaxed 50% band.
	write(t, dir, "BENCH_2026-01-02.json", `goos: linux
BenchmarkE14FleetFanIn 	1	937026 ns/op	158.5 sim_seconds	37730 scheduler_steps	28000 events_per_sec	0.80 speedup_x8
PASS
`)
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("30%% wall-coupled drift exited %d, want 0\n%s", code, out.String())
	}
	// A collapse (70% down) is a real engine regression and must fail.
	write(t, dir, "BENCH_2026-01-03.json", `goos: linux
BenchmarkE14FleetFanIn 	1	937026 ns/op	158.5 sim_seconds	37730 scheduler_steps	12000 events_per_sec	0.80 speedup_x8
PASS
`)
	out.Reset()
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("70%% wall-coupled collapse exited %d, want 1\n%s", code, out.String())
	}
	// The simulated metrics keep the tight default tolerance.
	write(t, dir, "BENCH_2026-01-04.json", `goos: linux
BenchmarkE14FleetFanIn 	1	937026 ns/op	170.0 sim_seconds	37730 scheduler_steps	12000 events_per_sec	0.80 speedup_x8
PASS
`)
	out.Reset()
	if code := run([]string{"-dir", dir, "-tolerance", "2"}, &out, &errOut); code != 1 {
		t.Fatalf("sim_seconds regression exited %d, want 1\n%s", code, out.String())
	}
}
