// Command benchdiff compares the repo's two most recent benchmark snapshots
// (BENCH_*.json, as written by `make bench`) and fails when a simulated-time
// metric regresses. The point is to separate the two kinds of numbers a
// benchmark line carries: host-dependent costs (ns/op, B/op, allocs/op vary
// with the machine and the Go release) and modelled quantities
// (scavenge_seconds, words_per_sec, overhead revolutions), which are
// statements about the reproduced system and must never quietly get worse.
//
// Usage:
//
//	benchdiff [-dir path] [-tolerance pct] [old.json new.json]
//
// With no file arguments the two lexically-latest BENCH_*.json files in the
// directory are compared (the dated naming makes lexical order
// chronological). Fewer than two snapshots is not an error — there is
// nothing to compare, and a fresh checkout must still pass `make check`.
// Exit status: 0 comparable or nothing to compare, 1 on regression, 2 on
// usage or parse errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json snapshots")
	tol := fs.Float64("tolerance", 2.0, "percent worsening tolerated before failing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var oldPath, newPath string
	switch fs.NArg() {
	case 0:
		snaps, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		if len(snaps) < 2 {
			fmt.Fprintf(stdout, "benchdiff: %d snapshot(s) in %s; nothing to compare\n", len(snaps), *dir)
			return 0
		}
		sort.Strings(snaps)
		oldPath, newPath = snaps[len(snaps)-2], snaps[len(snaps)-1]
	case 2:
		oldPath, newPath = fs.Arg(0), fs.Arg(1)
	default:
		fmt.Fprintln(stderr, "benchdiff: want no file arguments or exactly two")
		return 2
	}

	old, err := parseSnapshot(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := parseSnapshot(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	fmt.Fprintf(stdout, "benchdiff: %s -> %s\n", filepath.Base(oldPath), filepath.Base(newPath))
	regressions := 0
	for _, bench := range sortedKeys(old) {
		newMetrics, ok := cur[bench]
		if !ok {
			fmt.Fprintf(stdout, "  %s: gone from the new snapshot\n", bench)
			regressions++
			continue
		}
		for _, unit := range sortedKeys(old[bench]) {
			was := old[bench][unit]
			dir := direction(unit)
			if dir == hostDependent {
				continue
			}
			now, ok := newMetrics[unit]
			if !ok {
				fmt.Fprintf(stdout, "  %s %s: metric gone from the new snapshot\n", bench, unit)
				regressions++
				continue
			}
			worse := worsening(was, now, dir)
			eff := *tol
			if wallCoupled(unit) && eff < 50 {
				eff = 50
			}
			switch {
			case dir == exact:
				if was != now {
					fmt.Fprintf(stdout, "  %s %s: %g -> %g (exact metric moved) REGRESSION\n",
						bench, unit, was, now)
					regressions++
				}
			case dir == informational:
				// Report direction-free metrics only when they moved.
				if was != now {
					fmt.Fprintf(stdout, "  %s %s: %g -> %g (informational)\n", bench, unit, was, now)
				}
			case worse > eff:
				fmt.Fprintf(stdout, "  %s %s: %g -> %g (%.1f%% worse) REGRESSION\n",
					bench, unit, was, now, worse)
				regressions++
			case was != now:
				fmt.Fprintf(stdout, "  %s %s: %g -> %g ok\n", bench, unit, was, now)
			}
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d simulated-time regression(s)\n", regressions)
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: no simulated-time regressions")
	return 0
}

// metricDir classifies a metric unit.
type metricDir int

const (
	hostDependent metricDir = iota // skipped: measures the host, not the model
	lowerBetter
	higherBetter
	informational // compared but never failing: ablation baselines, constants
	exact         // may not move at all: any change is a behavior change
)

// direction classifies by unit name. The snapshots' units are the repo's own
// b.ReportMetric names plus the testing package's standard ones, so keyword
// matching on the unit string is reliable.
func direction(unit string) metricDir {
	switch unit {
	case "ns/op", "B/op", "allocs/op", "MB/s":
		return hostDependent
	}
	// Exact metrics are pure functions of a deterministic schedule — the
	// cluster audit's divergence ledger — so any movement at all is a
	// behavior change, not a performance shift, and fails regardless of
	// tolerance.
	for _, kw := range []string{"divergence_detected"} {
		if strings.Contains(unit, kw) {
			return exact
		}
	}
	for _, kw := range []string{"per_sec", "speedup", "advantage", "_pct", "words_freed", "goodput"} {
		if strings.Contains(unit, kw) {
			return higherBetter
		}
	}
	for _, kw := range []string{"seconds", "ms", "revs", "overhead", "retries", "retransmits", "cold", "violations", "_ratio", "idle_frac", "files_lost", "bytes_corrupted", "rounds_to_heal"} {
		if strings.Contains(unit, kw) {
			return lowerBetter
		}
	}
	return informational
}

// wallCoupled reports units that mix the simulated schedule with the host's
// wall clock — the fleet engine's throughput numbers. They stay
// direction-checked (an engine regression shows up as a collapse), but with
// a far looser tolerance, because host load moves them from run to run in a
// way no simulated quantity ever moves.
func wallCoupled(unit string) bool {
	switch unit {
	case "events_per_sec", "speedup_x8":
		return true
	}
	return false
}

// worsening returns how many percent now is worse than was, given the
// metric's direction; <= 0 means no worse.
func worsening(was, now float64, dir metricDir) float64 {
	if was == 0 {
		if now == 0 {
			return 0
		}
		if dir == lowerBetter {
			return 100
		}
		return -100
	}
	change := (now - was) / was * 100
	if dir == higherBetter {
		return -change
	}
	return change
}

// parseSnapshot reads `go test -bench` output: for each Benchmark line,
// fields after the name and iteration count come in value/unit pairs.
func parseSnapshot(path string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q on %s", path, fields[i], name)
			}
			metrics[fields[i+1]] = v
		}
		out[name] = metrics
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// trimProcSuffix drops the -N GOMAXPROCS suffix go test appends to benchmark
// names, so snapshots from different machines still line up.
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// sortedKeys returns m's keys in sorted order, for stable output.
func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
