package altoos

// Ablation benchmarks: what each design decision of the paper actually buys
// or costs on the simulated hardware. Unlike E1–E9 (which reproduce the
// paper's claims), these turn a mechanism off and measure the difference:
//
//   - label checking on ordinary writes        (§3.3: "at no cost in time")
//   - consecutive allocation                   (§3.6: computed-address hints)
//   - per-file hint caching                    (§3.6: links cost revolutions)
//   - write-ahead directory journaling         (§3.5: why the paper skipped it)
//
// Simulated quantities are reported via b.ReportMetric.

import (
	"fmt"
	"testing"

	"altoos/internal/dir"
	"altoos/internal/dirlog"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/mem"
	"altoos/internal/sim"
	"altoos/internal/zone"
)

// ablationRig is a formatted drive + fs + root.
type ablationRig struct {
	drive *disk.Drive
	fs    *file.FS
	root  *dir.Directory
}

func newAblationRig(b *testing.B) *ablationRig {
	b.Helper()
	d, err := disk.NewDrive(disk.Diablo31(), 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := file.Format(d)
	if err != nil {
		b.Fatal(err)
	}
	root, err := dir.InitRoot(fs)
	if err != nil {
		b.Fatal(err)
	}
	return &ablationRig{drive: d, fs: fs, root: root}
}

// BenchmarkAblationLabelCheck compares an ordinary data write (label checked
// in passing) against a raw value write with no check at all. The paper's
// §3.3 claim is that the check is free; the ablation confirms the whole
// robustness story costs zero revolutions on the hot path.
func BenchmarkAblationLabelCheck(b *testing.B) {
	var checked, raw float64
	for i := 0; i < b.N; i++ {
		r := newAblationRig(b)
		g := r.drive.Geometry()
		rnd := sim.NewRand(1)
		const n = 300
		addrs := make([]disk.VDA, n)
		lbls := make([]disk.Label, n)
		var v [disk.PageWords]disk.Word
		for j := range addrs {
			addrs[j] = disk.VDA(1000 + rnd.Intn(3000))
			lbls[j] = disk.Label{FID: disk.FirstUserFID, Version: 1,
				PageNum: disk.Word(j), Length: disk.PageBytes, Next: disk.NilVDA, Prev: disk.NilVDA}
			if err := disk.Allocate(r.drive, addrs[j], lbls[j], &v); err != nil && !disk.IsCheck(err) {
				b.Fatal(err)
			}
		}
		t0 := r.drive.Clock().Now()
		for j := range addrs {
			if err := disk.WriteValue(r.drive, addrs[j], lbls[j], &v); err != nil && !disk.IsCheck(err) {
				b.Fatal(err)
			}
		}
		withCheck := r.drive.Clock().Now() - t0

		t1 := r.drive.Clock().Now()
		for j := range addrs {
			// The ablated write: no label action at all.
			if err := r.drive.Do(&disk.Op{Addr: addrs[j], Value: disk.Write, ValueData: &v}); err != nil {
				b.Fatal(err)
			}
		}
		noCheck := r.drive.Clock().Now() - t1
		checked = float64(withCheck) / float64(g.RevTime) / n
		raw = float64(noCheck) / float64(g.RevTime) / n
	}
	b.ReportMetric(checked, "revs/write_checked")
	b.ReportMetric(raw, "revs/write_unchecked")
	b.ReportMetric(checked-raw, "revs_check_overhead")
}

// BenchmarkAblationConsecutiveAllocation grows one file normally (allocator
// prefers the next sector) and one with the rover deliberately scattered
// before every extension, then compares steady-state sequential read cost —
// what the allocator's placement policy is worth.
func BenchmarkAblationConsecutiveAllocation(b *testing.B) {
	var seqMS, scatMS float64
	for i := 0; i < b.N; i++ {
		r := newAblationRig(b)
		rnd := sim.NewRand(2)
		const pages = 64
		grow := func(name string, scatter bool) *file.File {
			f, err := r.fs.Create(name)
			if err != nil {
				b.Fatal(err)
			}
			var p [disk.PageWords]disk.Word
			for pn := 1; pn <= pages; pn++ {
				if scatter {
					// Ablate the placement policy: the extension triggered
					// by this write must not find the adjacent sector free,
					// and the fallback scan starts somewhere random. (Marking
					// the map busy is enough — the allocator consults it
					// first; the lie is confined to this run.)
					lastPN, _ := f.LastPage()
					if a, err := f.PageAddr(lastPN); err == nil && int(a)+1 < r.fs.Descriptor().Free.Len() {
						r.fs.Descriptor().Free.SetBusy(a + 1)
					}
					r.fs.SetRover(disk.VDA(rnd.Intn(r.drive.Geometry().NSectors())))
				}
				if err := f.WritePage(disk.Word(pn), &p, disk.PageBytes); err != nil {
					b.Fatal(err)
				}
			}
			return f
		}
		read := func(f *file.File) float64 {
			var buf [disk.PageWords]disk.Word
			lastPN, _ := f.LastPage()
			// Warm pass, then measured pass.
			for pn := disk.Word(1); pn <= lastPN; pn++ {
				if _, err := f.ReadPage(pn, &buf); err != nil {
					b.Fatal(err)
				}
			}
			t0 := r.drive.Clock().Now()
			for pn := disk.Word(1); pn <= lastPN; pn++ {
				if _, err := f.ReadPage(pn, &buf); err != nil {
					b.Fatal(err)
				}
			}
			return float64(r.drive.Clock().Now()-t0) / 1e6 / float64(lastPN)
		}
		seqMS = read(grow("seq.dat", false))
		scatMS = read(grow("scat.dat", true))
	}
	b.ReportMetric(seqMS, "ms/page_consecutive")
	b.ReportMetric(scatMS, "ms/page_scattered_alloc")
	b.ReportMetric(scatMS/seqMS, "slowdown_without_policy")
}

// BenchmarkAblationHintCache reads a file sequentially with the per-handle
// hint cache working, then with hints forcibly forgotten before every page —
// the cost of living on links alone.
func BenchmarkAblationHintCache(b *testing.B) {
	var withMS, withoutMS float64
	for i := 0; i < b.N; i++ {
		r := newAblationRig(b)
		f, err := r.fs.Create("hints.dat")
		if err != nil {
			b.Fatal(err)
		}
		var p [disk.PageWords]disk.Word
		const pages = 48
		for pn := 1; pn <= pages; pn++ {
			if err := f.WritePage(disk.Word(pn), &p, disk.PageBytes); err != nil {
				b.Fatal(err)
			}
		}
		var buf [disk.PageWords]disk.Word
		h, err := r.fs.Open(f.FN())
		if err != nil {
			b.Fatal(err)
		}
		t0 := r.drive.Clock().Now()
		for pn := disk.Word(1); pn <= pages; pn++ {
			if _, err := h.ReadPage(pn, &buf); err != nil {
				b.Fatal(err)
			}
		}
		withMS = float64(r.drive.Clock().Now()-t0) / 1e6 / pages

		t1 := r.drive.Clock().Now()
		for pn := disk.Word(1); pn <= pages; pn++ {
			h.ForgetHints() // ablation: every access starts from the leader
			if _, err := h.ReadPage(pn, &buf); err != nil {
				b.Fatal(err)
			}
		}
		withoutMS = float64(r.drive.Clock().Now()-t1) / 1e6 / pages
	}
	b.ReportMetric(withMS, "ms/page_with_hints")
	b.ReportMetric(withoutMS, "ms/page_without_hints")
	b.ReportMetric(withoutMS/withMS, "slowdown_without_hints")
}

// BenchmarkAblationDirectoryJournal measures what the paper's rejected
// alternative — write-ahead journaling of directory changes (§3.5) — costs
// per mutation, quantifying the trade they made.
func BenchmarkAblationDirectoryJournal(b *testing.B) {
	var plainMS, loggedMS float64
	for i := 0; i < b.N; i++ {
		r := newAblationRig(b)
		m := mem.New()
		z, err := zone.New(m, 0x4000, 0x4000)
		if err != nil {
			b.Fatal(err)
		}
		log, err := dirlog.Open(r.fs, z, m)
		if err != nil {
			b.Fatal(err)
		}
		ld := log.Wrap(r.root)

		const n = 20
		mk := func(j int) file.FN {
			f, err := r.fs.Create(fmt.Sprintf("j%03d", j))
			if err != nil {
				b.Fatal(err)
			}
			return f.FN()
		}
		fns := make([]file.FN, 2*n)
		for j := range fns {
			fns[j] = mk(j)
		}

		t0 := r.drive.Clock().Now()
		for j := 0; j < n; j++ {
			if err := r.root.Insert(fmt.Sprintf("plain%03d", j), fns[j]); err != nil {
				b.Fatal(err)
			}
		}
		plainMS = float64(r.drive.Clock().Now()-t0) / 1e6 / n

		t1 := r.drive.Clock().Now()
		for j := 0; j < n; j++ {
			if err := ld.Insert(fmt.Sprintf("logged%03d", j), fns[n+j]); err != nil {
				b.Fatal(err)
			}
		}
		loggedMS = float64(r.drive.Clock().Now()-t1) / 1e6 / n
	}
	b.ReportMetric(plainMS, "ms/insert_plain")
	b.ReportMetric(loggedMS, "ms/insert_journaled")
	b.ReportMetric(loggedMS/plainMS, "journal_overhead_factor")
}
