// Package altoos is a from-scratch reproduction of the operating system
// described in Butler W. Lampson and Robert F. Sproull, "An Open Operating
// System for a Single-User Machine" (SOSP 1979) — the Alto OS — as a Go
// library over a simulated Alto: a timed moving-head disk model, 64K words
// of memory, and a Nova-like CPU.
//
// The package is a facade: it re-exports the subsystem APIs so a downstream
// user can build a whole machine in one call and still reach every layer,
// because the openness of the original is the point. Files are built out of
// label-checked disk pages you can also use directly; directories are plain
// files; the Scavenger is a client of the disk like any other program; a
// Junta lets a program evict the parts of the system it doesn't want.
//
//	sys, err := altoos.New(altoos.Config{})
//	if err != nil { ... }
//	s, _ := sys.CreateStream("greeting.txt")
//	altoos.PutString(s, "hello from 1979")
//	s.Close()
//
// The subsystems, one package per system in the paper:
//
//   - internal/disk — sectors with header/label/value, per-part
//     read/check/write operations, rotational timing (§3.1, §3.3)
//   - internal/file — pages, files, leader pages, the disk descriptor and
//     its hint allocation map, the hint ladder (§3.2–§3.4, §3.6)
//   - internal/dir — directories as ordinary files (§3.4)
//   - internal/scavenge — the Scavenger and the compacting scavenger (§3.5)
//   - internal/stream — OS6-style streams (§2)
//   - internal/zone — free-storage zones (§5)
//   - internal/mem, internal/cpu, internal/asm — the machine
//   - internal/swap — OutLoad/InLoad world swaps and booting (§4)
//   - internal/junta — the thirteen levels, Junta and CounterJunta (§5.2)
//   - internal/exec — loader, syscall surface, the Executive (§5.1)
//   - internal/ether — the 3 Mb/s network (§4's print server)
package altoos

import (
	"altoos/internal/core"
	"altoos/internal/cpu"
	"altoos/internal/debug"
	"altoos/internal/dir"
	"altoos/internal/dirlog"
	"altoos/internal/disk"
	"altoos/internal/ether"
	"altoos/internal/exec"
	"altoos/internal/file"
	"altoos/internal/fileserver"
	"altoos/internal/junta"
	"altoos/internal/mem"
	"altoos/internal/netfile"
	"altoos/internal/pup"
	"altoos/internal/scavenge"
	"altoos/internal/sim"
	"altoos/internal/stream"
	"altoos/internal/swap"
	"altoos/internal/zone"
)

// System is a whole simulated Alto with its resident operating system. See
// core.System for the full method set: file and stream creation, the
// Executive, scavenging, compaction, and world swaps.
type System = core.System

// Config selects the machine to build; the zero value is a standard Alto.
type Config = core.Config

// New builds a machine: a formatted pack on a fresh drive, or an attached
// existing drive via Config.Drive.
func New(cfg Config) (*System, error) { return core.New(cfg) }

// Disk layer.
type (
	// Geometry describes a drive's shape and timing.
	Geometry = disk.Geometry
	// Drive is the standard simulated disk drive.
	Drive = disk.Drive
	// Device is the abstract disk object; supply your own to use the
	// standard packages over non-standard hardware (§5.2).
	Device = disk.Device
	// Label is the seven-word absolute-plus-hint record on every sector.
	Label = disk.Label
	// VDA is a virtual disk address.
	VDA = disk.VDA
	// FID is a file identifier.
	FID = disk.FID
	// FV is the (identifier, version) absolute name prefix.
	FV = disk.FV
)

// Diablo31 is the standard 2.5 MB drive geometry.
func Diablo31() Geometry { return disk.Diablo31() }

// Trident is the larger, faster drive of §2.
func Trident() Geometry { return disk.Trident() }

// NewDrive creates a drive with a freshly formatted pack.
func NewDrive(g Geometry, pack uint16, clock *sim.Clock) (*Drive, error) {
	return disk.NewDrive(g, pack, clock)
}

// File layer.
type (
	// FS is a mounted file system.
	FS = file.FS
	// File is an open file handle.
	File = file.File
	// FN is a file's full name: absolute (FID, version) plus leader hint.
	FN = file.FN
	// Leader is the decoded leader page.
	Leader = file.Leader
)

// Format writes a fresh file system; Mount attaches to an existing one.
var (
	Format = file.Format
	Mount  = file.Mount
)

// Directory layer.
type (
	// Directory is an open directory file.
	Directory = dir.Directory
	// DirEntry is one (name, full name) pair.
	DirEntry = dir.Entry
)

// OpenRoot opens the root directory of a file system.
func OpenRoot(fs *FS) (*Directory, error) { return dir.OpenRoot(fs) }

// ResolveName finds a name anywhere in the directory graph.
func ResolveName(fs *FS, name string) (FN, error) { return dir.ResolveName(fs, name) }

// Scavenger.
type (
	// ScavengeReport describes what a scavenging pass found and repaired.
	ScavengeReport = scavenge.Report
	// CompactReport describes a compaction run.
	CompactReport = scavenge.CompactReport
)

// Scavenge reconstructs a file system from its labels alone.
func Scavenge(dev Device) (*FS, *ScavengeReport, error) { return scavenge.Run(dev) }

// Compact is the in-place permuting scavenger of §3.5.
func Compact(dev Device) (*FS, *CompactReport, error) { return scavenge.Compact(dev) }

// Streams.
type (
	// Stream is the standard stream object: Get/Put/Reset/EndOf/Close.
	Stream = stream.Stream
	// DiskStream is a byte stream over a file.
	DiskStream = stream.DiskStream
	// Keyboard is the type-ahead keyboard stream.
	Keyboard = stream.Keyboard
)

// Stream modes.
const (
	ReadMode   = stream.ReadMode
	WriteMode  = stream.WriteMode
	UpdateMode = stream.UpdateMode
)

// Stream helpers.
var (
	// NewDiskStream opens a stream over a file with an explicit zone and
	// memory — the open-style constructor of §2.
	NewDiskStream = stream.NewDisk
	// PutString writes a string to any stream.
	PutString = stream.PutString
	// ReadAllStream drains a stream.
	ReadAllStream = stream.ReadAll
	// PumpStream copies one stream into another.
	PumpStream = stream.Pump
)

// Machine.
type (
	// Memory is the 64K-word main store.
	Memory = mem.Memory
	// CPU is the Nova-like processor.
	CPU = cpu.CPU
	// Clock is the virtual clock all timing claims are measured on.
	Clock = sim.Clock
)

// Zones.
type (
	// Zone is the abstract free-storage object.
	Zone = zone.Zone
	// MemZone is the standard first-fit zone over simulated memory.
	MemZone = zone.MemZone
)

// NewZone builds a zone over any region of memory (§5.2).
func NewZone(m *Memory, base uint16, size int) (*MemZone, error) {
	return zone.New(m, base, size)
}

// World swap.
type (
	// Message is the ~20-word InLoad parameter vector.
	Message = swap.Message
)

// World-swap operations (§4.1).
var (
	OutLoad   = swap.OutLoad
	InLoad    = swap.InLoad
	SaveState = swap.SaveState
	LoadState = swap.LoadState
	Boot      = swap.Boot
	WriteBoot = swap.WriteBoot
)

// Junta.
type (
	// Junta manages the thirteen service levels.
	Junta = junta.Junta
	// JuntaLevel numbers a service level.
	JuntaLevel = junta.Level
)

// The levels of §5.2.
const (
	LevelSwap       = junta.LevelSwap
	LevelKeyboard   = junta.LevelKeyboard
	LevelHints      = junta.LevelHints
	LevelRuntime    = junta.LevelRuntime
	LevelDiskCode   = junta.LevelDiskCode
	LevelDiskData   = junta.LevelDiskData
	LevelZones      = junta.LevelZones
	LevelDiskStream = junta.LevelDiskStream
	LevelDirectory  = junta.LevelDirectory
	LevelKbdStream  = junta.LevelKbdStream
	LevelDisplay    = junta.LevelDisplay
	LevelLoader     = junta.LevelLoader
	LevelFreeStore  = junta.LevelFreeStore
)

// Executive and loader.
type (
	// OS is the resident syscall surface.
	OS = exec.OS
	// Executive is the command interpreter.
	Executive = exec.Executive
	// Loader reads code files and binds their fixups.
	Loader = exec.Loader
)

// Network.
type (
	// Network is the simulated 3 Mb/s Ethernet.
	Network = ether.Network
	// Station is one network attachment.
	Station = ether.Station
	// Packet is the standardized wire representation.
	Packet = ether.Packet
	// FileServer serves files over the network (the §1 remote facilities).
	FileServer = netfile.Server
	// FileClient fetches and stores files against a FileServer.
	FileClient = netfile.Client
	// FaultConfig parameterizes the deterministic lossy-wire model.
	FaultConfig = ether.FaultConfig
	// FaultMedium injects seeded drops, duplicates, delays and bit flips
	// into a Network; everything above the packet layer must survive it.
	FaultMedium = ether.FaultMedium
	// FaultRate is a fault probability (Num out of Den deliveries).
	FaultRate = ether.Rate
	// Endpoint is a reliable-transport endpoint over one Station.
	Endpoint = pup.Endpoint
	// Conn is one reliable connection on an Endpoint.
	Conn = pup.Conn
	// TransportConfig tunes a reliable-transport Endpoint.
	TransportConfig = pup.Config
	// PageServer is the multi-client file server over reliable transport.
	PageServer = fileserver.Server
	// PageClient runs transfers against a PageServer.
	PageClient = fileserver.Client
)

// NewNetwork creates a broadcast network on a clock.
func NewNetwork(clock *Clock) *Network { return ether.New(clock) }

// ConnClosed is the terminal connection state (see Conn.State).
const ConnClosed = pup.StateClosed

// NewEndpoint builds a reliable-transport endpoint on a station.
func NewEndpoint(st *Station, cfg TransportConfig) *Endpoint {
	return pup.NewEndpoint(st, cfg)
}

// NewPageServer builds a multi-client file server on an endpoint.
func NewPageServer(fs *FS, ep *Endpoint) *PageServer { return fileserver.NewServer(fs, ep) }

// NewPageClient builds a file-server client on an endpoint.
func NewPageClient(ep *Endpoint) *PageClient { return fileserver.NewClient(ep) }

// Debugging (§4).
type (
	// Debugger is the Swat-style debugger operating on Swatee state files.
	Debugger = debug.Debugger
)

// Diskless is the §5.2 configuration without a disk.
type (
	Diskless       = core.Diskless
	DisklessConfig = core.DisklessConfig
)

// NewDiskless builds a machine with no disk — display, keyboard, zones and
// optionally a network station.
func NewDiskless(cfg DisklessConfig) (*Diskless, error) { return core.NewDiskless(cfg) }

// Directory journaling (the §3.5 user extension).
type (
	// DirLog is the write-ahead directory journal with snapshots.
	DirLog = dirlog.Log
)
