package altoos

// One benchmark per experiment (E1..E9) — the paper's quantitative claims.
// Each benchmark runs the corresponding workload generator from
// internal/experiments and reports the *simulated* quantities the paper
// talks about via b.ReportMetric; the wall-clock ns/op that testing.B
// prints measures only the host's simulation speed and is not a
// reproduction target. cmd/altobench prints the same results as tables,
// and EXPERIMENTS.md records the paper-vs-measured comparison.

import (
	"testing"
	"time"

	"altoos/internal/experiments"
)

// report runs one experiment per iteration and republishes its metrics.
func report(b *testing.B, f func() (*experiments.Result, error), keys ...string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := f()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, k := range keys {
		v, ok := last.Metrics[k]
		if !ok {
			b.Fatalf("experiment %s did not produce metric %q", last.ID, k)
		}
		b.ReportMetric(v, k)
	}
}

// BenchmarkE1RawTransfer — §2: "can transfer 64k words in about one second".
func BenchmarkE1RawTransfer(b *testing.B) {
	report(b, experiments.E1RawTransfer, "sim_seconds_64kwords", "words_per_sec")
}

// BenchmarkE2AllocFreeCost — §3.3: alloc/free cost one revolution; ordinary
// writes check labels for free.
func BenchmarkE2AllocFreeCost(b *testing.B) {
	report(b, experiments.E2AllocFreeCost, "alloc_overhead_revs", "free_overhead_revs")
}

// BenchmarkE3Scavenge — §3.5: "about a minute for a 2.5 megabyte disk".
func BenchmarkE3Scavenge(b *testing.B) {
	report(b, experiments.E3Scavenge, "scavenge_seconds_Diablo31", "scavenge_seconds_Trident")
}

// BenchmarkE4CompactionSpeedup — §3.5: order-of-magnitude sequential-read
// speedup after the compacting scavenger.
func BenchmarkE4CompactionSpeedup(b *testing.B) {
	report(b, experiments.E4Compaction, "speedup", "aged_speedup")
}

// BenchmarkE5HintLadder — §3.6: the cost of each recovery level.
func BenchmarkE5HintLadder(b *testing.B) {
	report(b, experiments.E5HintLadder,
		"ms_direct_hint", "ms_link_chase", "ms_kth_page", "ms_fv_lookup", "ms_string_lookup", "ms_scavenge")
}

// BenchmarkE6WorldSwap — §4.1: OutLoad/InLoad take about a second each.
func BenchmarkE6WorldSwap(b *testing.B) {
	report(b, experiments.E6WorldSwap, "outload_seconds", "inload_seconds")
}

// BenchmarkE7Junta — §5.2: storage freed per retained level.
func BenchmarkE7Junta(b *testing.B) {
	report(b, experiments.E7Junta, "max_words_freed", "full_resident_words")
}

// BenchmarkE8FaultInjection — §3.3/§6: label checks reject every wild
// write; the Scavenger recovers everything damage didn't directly destroy.
func BenchmarkE8FaultInjection(b *testing.B) {
	report(b, experiments.E8Robustness,
		"wild_writes_rejected_pct", "map_lie_retries", "undamaged_recovery_pct")
}

// BenchmarkE9InstalledHints — §3.6: warm starts at maximum disk speed.
func BenchmarkE9InstalledHints(b *testing.B) {
	report(b, experiments.E9InstalledHints, "warm_ms", "cold_ms", "warm_advantage")
}

// BenchmarkE10LoadedServer — §1: eight clients hammering one file server
// over a 10%-loss wire; the reliable transport hides every fault.
func BenchmarkE10LoadedServer(b *testing.B) {
	report(b, experiments.E10LoadedServer,
		"sim_seconds", "goodput_words_per_sec", "retransmits")
}

// BenchmarkE11LossSweep — §1: steady-state goodput against packet loss,
// 0% to 20%, plus the waste metrics: what fraction of data words were
// resent, and what fraction of the phase the wire sat idle.
func BenchmarkE11LossSweep(b *testing.B) {
	report(b, experiments.E11LossSweep,
		"goodput_words_per_sec_loss0", "goodput_words_per_sec_loss10",
		"goodput_words_per_sec_loss20", "retransmits_loss20",
		"retransmitted_words_ratio_loss20", "wire_idle_frac_loss20")
}

// BenchmarkE12CrashSweep — §3.5: every crash point of the journaled-insert
// and compaction workloads, clean and torn, recovers to a pack fsck
// certifies violation-free.
func BenchmarkE12CrashSweep(b *testing.B) {
	report(b, experiments.E12CrashSweep,
		"crash_points_total", "violations_total", "recovered_pct")
}

// BenchmarkE13Saturation — §1: two dozen flows saturate one 10%-loss
// segment; AIMD keeps them live and fair (Jain's index) with zero
// corrupted deliveries.
func BenchmarkE13Saturation(b *testing.B) {
	report(b, experiments.E13Saturation,
		"jain_fairness_pct", "goodput_words_per_sec_total", "retransmits")
}

// BenchmarkE14FleetFanIn — §1: a hundred Altos boot and fan in on one file
// server, scheduled by the windowed parallel fleet engine. The simulated
// quantities (sim_seconds, scheduler_steps, retransmits) are deterministic;
// events_per_sec and speedup_x8 measure the host — the schedule executed at
// one worker vs eight — and carry benchdiff's relaxed wall-coupled
// tolerance. On a single-core host the speedup reads ~1.0 by construction.
func BenchmarkE14FleetFanIn(b *testing.B) {
	var last *experiments.Result
	var wall1, wall8 time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		r, err := experiments.E14FanIn(100, 1, nil)
		if err != nil {
			b.Fatal(err)
		}
		wall1 = time.Since(t0)
		t0 = time.Now()
		if _, err := experiments.E14FanIn(100, 8, nil); err != nil {
			b.Fatal(err)
		}
		wall8 = time.Since(t0)
		last = r
	}
	for _, k := range []string{"sim_seconds", "scheduler_steps", "retransmits"} {
		b.ReportMetric(last.Metrics[k], k)
	}
	b.ReportMetric(last.Metrics["scheduler_steps"]/wall8.Seconds(), "events_per_sec")
	b.ReportMetric(wall1.Seconds()/wall8.Seconds(), "speedup_x8")
}

// BenchmarkE15ClusterAudit — §3.5 across machines: a 4×3 replicated file
// service absorbs hundreds of sessions at 10% loss plus seeded rot, then the
// distributed Scavenger audits every pack back to byte-identical copies.
// files_lost and bytes_corrupted must hold at zero; divergence_detected is
// exact — the manufactured damage is part of the deterministic schedule, so
// any drift in what the audit saw is a behavior change, not noise.
func BenchmarkE15ClusterAudit(b *testing.B) {
	report(b, experiments.E15ClusterAudit,
		"files_lost", "bytes_corrupted", "divergence_detected",
		"heals", "audit_rounds_to_heal", "sim_seconds")
}
