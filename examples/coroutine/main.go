// Coroutine: two machine-code programs alternate control of the whole
// machine through OutLoad/InLoad, the paper's §4.1 mechanism — "a program
// first records its state on one disk file, and then restores the machine
// state from a second file. The original program resumes execution when the
// machine state is restored from the first file."
//
// Each program prints its tag, saves itself, and restores its partner; a
// counter in its own memory image (which travels with the state file)
// bounds the rounds. The output interleaves the two programs' tags even
// though the machine runs exactly one program at a time — exactly how the
// Alto's debugger and print server switched activities.
package main

import (
	"fmt"
	"log"
	"os"

	"altoos"
	"altoos/internal/asm"
	"altoos/internal/exec"
)

// program builds the ping-pong source for one side.
func program(tag byte, rounds int) string {
	return fmt.Sprintf(`
START:	LDA 0, TAG
	SYS 1           ; print my tag
LOOP:	LDA 0, MYFN
	SYS 8           ; OutLoad(my state) -> AC0: 1 = written, 0 = resumed
	MOV# 0, 0, SNR  ; skip when AC0 != 0 (the written path)
	JMP RESUMED
	LDA 0, PARTFN   ; written: transfer control to the partner
	LDA 1, MSGB
	SYS 9           ; InLoad(partner state) — never returns
	HALT
RESUMED: LDA 0, TAG
	SYS 1           ; print my tag again: the partner swapped us back in
	DSZ COUNT       ; one round done; skip when the count hits zero
	JMP LOOP
	HALT
COUNT:	.word %d
TAG:	.word '%c'
MSGB:	.blk 20
MYFN:	.word MYNAME
PARTFN:	.word PARTNAME
MYNAME:	.blk 8
PARTNAME: .blk 8
`, rounds, tag)
}

func main() {
	sys, err := altoos.New(altoos.Config{Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	setup := func(name string, tag byte) *asm.Program {
		p, err := asm.Assemble(program(tag, 3))
		if err != nil {
			log.Fatal(err)
		}
		if err := exec.WriteCodeFile(sys.OS, name, p, nil); err != nil {
			log.Fatal(err)
		}
		return p
	}
	progA := setup("ping.run", 'A')
	progB := setup("pong.run", 'B')

	// Bootstrap: run A once. It prints "A", OutLoads A.state, then its
	// InLoad of the (not yet existing) B.state fails — expected: the
	// partner isn't installed yet.
	entry, err := sys.Loader.Load("ping.run")
	if err != nil {
		log.Fatal(err)
	}
	exec.WriteString(sys.Mem, progA.Symbols["MYNAME"], "A.state")
	exec.WriteString(sys.Mem, progA.Symbols["PARTNAME"], "B.state")
	sys.CPU.Reset(entry)
	if _, err := sys.CPU.Run(1_000_000); err == nil {
		log.Fatal("expected the bootstrap InLoad to fail")
	}
	fmt.Println(" <- A installed itself and paused")

	// Now run B. From here the two programs swap the machine back and
	// forth entirely on their own: B's InLoad resumes A inside its OutLoad,
	// A's next InLoad resumes B, and so on until the counters run out.
	entry, err = sys.Loader.Load("pong.run")
	if err != nil {
		log.Fatal(err)
	}
	exec.WriteString(sys.Mem, progB.Symbols["MYNAME"], "B.state")
	exec.WriteString(sys.Mem, progB.Symbols["PARTNAME"], "A.state")
	sys.CPU.Reset(entry)
	if _, err := sys.CPU.Run(10_000_000); err != nil {
		log.Fatalf("ping-pong failed: %v", err)
	}
	fmt.Println(" <- one side ran out of rounds and halted")
	fmt.Printf("simulated time: %v (each swap writes and reads a full 64K machine state)\n",
		sys.Clock.Now().Round(1000))
}
