// Netcopy: two complete Altos on one ether exchange files through the
// standardized packet protocol (§1: "it is the representation of files on
// the disk and of packets on the network that are standardized", which is
// what lets machines in different programming environments interoperate).
// One machine serves its file system; the other fetches a file, edits it,
// and stores the result back — all poll-driven, single-user style.
//
// The wire is deliberately faulty: the medium drops, duplicates and
// corrupts packets at a healthy rate, and every transfer still completes
// intact, because the file protocol rides the reliable transport. The
// fault counters printed at the end are the proof the faults were real.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"altoos"
	"altoos/internal/netfile"
)

func main() {
	wire := altoos.NewNetwork(nil)
	faults := wire.InjectFaults(altoos.FaultConfig{
		Seed:    1979,
		Drop:    altoos.FaultRate{Num: 1, Den: 12}, // ~8% of deliveries lost
		Dup:     altoos.FaultRate{Num: 1, Den: 40},
		Corrupt: altoos.FaultRate{Num: 1, Den: 40},
	})

	// The server machine, with a document on its pack.
	srvDrive, err := altoos.NewDrive(altoos.Diablo31(), 1, wire.Clock())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := altoos.Format(srvDrive); err != nil {
		log.Fatal(err)
	}
	server, err := altoos.New(altoos.Config{Drive: srvDrive, Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	w, err := server.CreateStream("paper.txt")
	if err != nil {
		log.Fatal(err)
	}
	if err := altoos.PutString(w, "files are built out of disk pages\n"); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	sst, err := wire.Attach(1)
	if err != nil {
		log.Fatal(err)
	}
	srv := netfile.NewServer(server.FS, sst, server.Zone, server.Mem)

	// The client machine, with its own pack and its own station.
	cliDrive, err := altoos.NewDrive(altoos.Diablo31(), 2, wire.Clock())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := altoos.Format(cliDrive); err != nil {
		log.Fatal(err)
	}
	client, err := altoos.New(altoos.Config{Drive: cliDrive, Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	cst, err := wire.Attach(2)
	if err != nil {
		log.Fatal(err)
	}
	cli := netfile.NewClient(cst)

	// Fetch: request, then alternate polls — the machine is single-user and
	// poll-driven, so the "concurrency" is explicit activity switching.
	if err := cli.Request(1, "paper.txt"); err != nil {
		log.Fatal(err)
	}
	for !cli.Done() {
		if _, err := srv.Poll(); err != nil {
			log.Fatal(err)
		}
		if _, err := cli.Poll(); err != nil {
			log.Fatal(err)
		}
	}
	body, err := cli.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched %d bytes: %q\n", len(body), strings.TrimSpace(string(body)))

	// Keep a local copy on the client's own pack.
	local, err := client.CreateStream("paper-copy.txt")
	if err != nil {
		log.Fatal(err)
	}
	if err := altoos.PutString(local, string(body)); err != nil {
		log.Fatal(err)
	}
	if err := local.Close(); err != nil {
		log.Fatal(err)
	}

	// Edit and store back under a new name.
	edited := string(body) + "every access checks the page label\n"
	if err := cli.Store(1, "paper-v2.txt", []byte(edited)); err != nil {
		log.Fatal(err)
	}
	// A store is reliable now: poll both ends until the server's
	// confirmation comes back through the lossy wire.
	for !cli.Done() {
		if _, err := srv.Poll(); err != nil {
			log.Fatal(err)
		}
		if _, err := cli.Poll(); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := cli.Result(); err != nil {
		log.Fatal(err)
	}

	// Prove it landed: read it on the server side.
	r, err := server.OpenStream("paper-v2.txt", altoos.ReadMode)
	if err != nil {
		log.Fatal(err)
	}
	back, err := altoos.ReadAllStream(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server now holds paper-v2.txt (%d bytes):\n%s", len(back), back)

	pkts, words := wire.Stats()
	fmt.Printf("wire: %d packets, %d words; simulated time %v\n",
		pkts, words, wire.Clock().Now().Round(1000))
	fs := faults.Stats()
	fmt.Printf("faults survived: %d dropped, %d duplicated, %d corrupted of %d deliveries — every byte intact\n",
		fs.Dropped, fs.Dupped, fs.Corrupted, fs.Judged)
}
