// Editor installation: the §3.6 hint workflow. "Many programs use a
// collection of auxiliary files to which they need rapid access. The
// editor, for example, uses two scratch files, a journal file, a file of
// messages etc. When these programs are installed, they create the
// necessary files and store hints for them in a data structure that is then
// written onto a state file. Subsequently the program can start up, read
// the state file, and access all its auxiliary files at maximum disk speed.
// If a hint fails, e.g. because a scratch file got deleted or moved, the
// program must repeat the installation phase."
package main

import (
	"fmt"
	"log"
	"os"

	"altoos"
	"altoos/internal/disk"
	"altoos/internal/file"
	"altoos/internal/stream"
)

// auxFiles is the editor's working set.
var auxFiles = []string{"editor.scratch1", "editor.scratch2", "editor.journal", "editor.messages"}

// hintRecord is what the editor saves per auxiliary file: the full name and
// the address of every page it cares about (here, page 1).
type hintRecord struct {
	name  string
	fn    file.FN
	page1 disk.VDA
}

func main() {
	sys, err := altoos.New(altoos.Config{Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== install phase ==")
	records := install(sys)
	saveState(sys, records)
	fmt.Printf("installed %d auxiliary files; hints written to editor.state\n", len(records))

	fmt.Println("== warm start: every access is one direct disk hit ==")
	warm := loadState(sys)
	sys.FS.ResetStats()
	for _, rec := range warm {
		f, err := sys.FS.Open(rec.fn)
		if err != nil {
			log.Fatal(err)
		}
		f.ForgetHints() // only the installed hint matters
		f.SetHint(1, rec.page1)
		var buf [disk.PageWords]disk.Word
		if _, err := f.ReadPage(1, &buf); err != nil {
			log.Fatal(err)
		}
	}
	st := sys.FS.Stats()
	fmt.Printf("reads: %d hint hits, %d link chases, %d directory lookups\n",
		st.HintHits, st.LinkChases, st.FVResolves)

	fmt.Println("== a scratch file is deleted behind the editor's back ==")
	victim, err := sys.OpenByName("editor.scratch2")
	if err != nil {
		log.Fatal(err)
	}
	root, _ := sys.Root()
	if err := victim.Delete(); err != nil {
		log.Fatal(err)
	}
	if err := root.Remove("editor.scratch2"); err != nil {
		log.Fatal(err)
	}

	// The stale hint fails loudly — "no damage is done, and the program
	// using the hint is informed so that it can take corrective action."
	stale := loadState(sys)
	for _, rec := range stale {
		f, err := sys.FS.Open(rec.fn)
		if err != nil {
			fmt.Printf("%-18s hint failed (open): reinstall needed\n", rec.name)
			continue
		}
		f.ForgetHints()
		f.SetHint(1, rec.page1)
		var buf [disk.PageWords]disk.Word
		if _, err := f.ReadPage(1, &buf); err != nil {
			fmt.Printf("%-18s hint failed (read): reinstall needed\n", rec.name)
			continue
		}
		fmt.Printf("%-18s hint still valid\n", rec.name)
	}

	fmt.Println("== reinstall ==")
	records = install(sys)
	saveState(sys, records)
	fmt.Printf("reinstalled; %d auxiliary files healthy again\n", len(records))
	fmt.Printf("simulated time: %v\n", sys.Clock.Now().Round(1000))
}

// install creates (or reuses) the auxiliary files and collects fresh hints.
func install(sys *altoos.System) []hintRecord {
	var out []hintRecord
	for _, name := range auxFiles {
		f, err := sys.OpenByName(name)
		if err != nil {
			f, err = sys.CreateFile(name)
			if err != nil {
				log.Fatal(err)
			}
			var page [disk.PageWords]disk.Word
			copy(page[:], []disk.Word{0xED, 0x17})
			if err := f.WritePage(1, &page, 4); err != nil {
				log.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				log.Fatal(err)
			}
		}
		a, err := f.PageAddr(1)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, hintRecord{name: name, fn: f.FN(), page1: a})
	}
	return out
}

// saveState writes the hint records onto the editor's state file. The
// system "makes no effort to keep them up to date" — that is the point.
func saveState(sys *altoos.System, records []hintRecord) {
	w, err := openState(sys)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	put := func(v uint16) {
		if err := stream.PutWord(w, v); err != nil {
			log.Fatal(err)
		}
	}
	put(uint16(len(records)))
	for _, r := range records {
		put(uint16(len(r.name)))
		for i := 0; i < len(r.name); i++ {
			put(uint16(r.name[i]))
		}
		put(uint16(r.fn.FV.FID >> 16))
		put(uint16(r.fn.FV.FID))
		put(r.fn.FV.Version)
		put(uint16(r.fn.Leader))
		put(uint16(r.page1))
	}
}

func openState(sys *altoos.System) (*stream.DiskStream, error) {
	if s, err := sys.OpenStream("editor.state", altoos.UpdateMode); err == nil {
		return s, nil
	}
	return sys.CreateStream("editor.state")
}

// loadState reads the records back.
func loadState(sys *altoos.System) []hintRecord {
	r, err := sys.OpenStream("editor.state", altoos.ReadMode)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	get := func() uint16 {
		v, err := stream.GetWord(r)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	n := int(get())
	out := make([]hintRecord, 0, n)
	for i := 0; i < n; i++ {
		nameLen := int(get())
		name := make([]byte, nameLen)
		for j := range name {
			name[j] = byte(get())
		}
		rec := hintRecord{name: string(name)}
		rec.fn.FV.FID = disk.FID(get())<<16 | disk.FID(get())
		rec.fn.FV.Version = get()
		rec.fn.Leader = disk.VDA(get())
		rec.page1 = disk.VDA(get())
		out = append(out, rec)
	}
	return out
}
