// Quickstart: build a machine, write and read files through streams, list
// the directory, and run a command through the Executive — the basic life
// of a single-user Alto.
package main

import (
	"fmt"
	"log"
	"os"

	"altoos"
)

func main() {
	// A standard Alto: Diablo 31 drive, freshly formatted pack.
	sys, err := altoos.New(altoos.Config{Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formatted %v\n", sys.Drive.Geometry())

	// Write a file through a disk stream. The stream takes its page buffer
	// from the system free-storage zone — the substrates are explicit and
	// replaceable, which is the "open" in open operating system.
	w, err := sys.CreateStream("greeting.txt")
	if err != nil {
		log.Fatal(err)
	}
	if err := altoos.PutString(w, "Files are built out of disk pages;\n"); err != nil {
		log.Fatal(err)
	}
	if err := altoos.PutString(w, "every access checks the page label.\n"); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Read it back.
	r, err := sys.OpenStream("greeting.txt", altoos.ReadMode)
	if err != nil {
		log.Fatal(err)
	}
	body, err := altoos.ReadAllStream(r)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting.txt (%d bytes):\n%s", len(body), body)

	// Every file has a full name: the absolute (FID, version) plus a hint
	// address. The hint may go stale; the absolutes never lie.
	f, err := sys.OpenByName("greeting.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full name: %v\n", f.FN())

	// The root directory is an ordinary file of (name, full name) pairs.
	root, err := sys.Root()
	if err != nil {
		log.Fatal(err)
	}
	entries, err := root.List()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("root directory:")
	for _, e := range entries {
		fmt.Printf("  %-20s %v\n", e.Name, e.FN.FV)
	}

	// Drive the Executive with type-ahead, §5.1 style.
	fmt.Println("--- executive session ---")
	sys.TypeAhead("free\ntype greeting.txt\nquit\n")
	if err := sys.RunExecutive(); err != nil {
		log.Fatal(err)
	}

	// All timing in this system is simulated: the clock advanced only for
	// the disk and CPU work above.
	fmt.Printf("simulated time elapsed: %v\n", sys.Clock.Now().Round(1000))
}
