// Crash recovery: injure a disk every way §3 worries about — a stale
// allocation map, wild writes under wrong names, a crash mid-operation,
// scrambled directories, a destroyed leader — and watch the label checks
// refuse the damage and the Scavenger reconstruct everything else. Then
// fragment the disk and run the compacting scavenger to get the §3.5
// order-of-magnitude sequential-read speedup.
package main

import (
	"fmt"
	"log"
	"os"

	"altoos"
	"altoos/internal/crashpoint"
	"altoos/internal/dir"
	"altoos/internal/disk"
	"altoos/internal/file"
)

func main() {
	sys, err := altoos.New(altoos.Config{Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	// A population of files.
	for i := 0; i < 6; i++ {
		w, err := sys.CreateStream(fmt.Sprintf("report-%d.txt", i))
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < 40; j++ {
			if err := altoos.PutString(w, fmt.Sprintf("report %d line %d: all absolutes, no lies\n", i, j)); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// 1. A wild write with a stale full name: the label check rejects it
	// before anything lands on the platter.
	fmt.Println("-- wild write with a wrong full name --")
	victim, err := sys.OpenByName("report-0.txt")
	if err != nil {
		log.Fatal(err)
	}
	addr, err := victim.PageAddr(1)
	if err != nil {
		log.Fatal(err)
	}
	wrong := disk.Label{FID: 0x9999, Version: 1, PageNum: 1, Length: disk.PageBytes}
	var junk [disk.PageWords]disk.Word
	err = disk.WriteValue(sys.Drive, addr, wrong, &junk)
	fmt.Printf("   write rejected: %v\n", err != nil)

	// 2. Lie in the allocation map: the page is busy, the map says free.
	// Allocation trips over the label, marks the page unavailable, and
	// succeeds elsewhere — "a little extra one-time disk activity".
	fmt.Println("-- allocation map marked a busy page free --")
	sys.FS.Descriptor().Free.SetFree(addr)
	sys.FS.SetRover(addr) // make the allocator walk straight into the lie
	sys.FS.ResetStats()
	if _, err := sys.CreateFile("after-the-lie.txt"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   allocation retries paid: %d; victim intact: %v\n",
		sys.FS.Stats().AllocRetries, pageReads(victim))

	// 3. Real damage: scramble the root directory and kill one file's
	// leader, then scavenge.
	fmt.Println("-- destroying the root directory and one leader --")
	// §3.4: "If a directory is destroyed, we don't lose any files." Blow
	// away the root directory's data pages and one file's leader.
	doomed, _ := sys.OpenByName("report-5.txt")
	root, _ := sys.Root()
	rootFile := root.File()
	lastPN := rootFile.LastPN()
	for pn := disk.Word(1); pn <= lastPN; pn++ {
		a, err := rootFile.PageAddr(pn)
		if err != nil {
			log.Fatal(err)
		}
		sys.Drive.ZapLabel(a, disk.FreeLabelWords())
	}
	sys.Drive.ZapLabel(doomed.FN().Leader, disk.FreeLabelWords())

	rep, err := sys.Scavenge()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s\n", rep)

	// Every file except the one whose leader we destroyed is reachable and
	// intact; its data pages were reclaimed as free space.
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("report-%d.txt", i)
		f, err := sys.OpenByName(name)
		if err != nil {
			log.Fatalf("%s lost: %v", name, err)
		}
		fmt.Printf("   %-14s intact, %5d bytes\n", name, f.Size())
	}
	if _, err := sys.OpenByName("report-5.txt"); err != nil {
		fmt.Println("   report-5.txt  gone with its leader (data pages reclaimed)")
	}

	// 4. Crash mid-operation: drive the crash-point explorer for a single
	// sampled point of the journaled directory workload. The explorer
	// rebuilds a fresh machine, fails power after that write — once with
	// the in-flight sector suppressed cleanly, once with it landing torn —
	// then reboots each wreck into the Scavenger and has fsck re-prove
	// every invariant. (`altocrash` sweeps every write the same way.)
	fmt.Println("-- power failure in the middle of a journaled insert --")
	wl, ok := crashpoint.Lookup("journaled-insert")
	if !ok {
		log.Fatal("journaled-insert workload not registered")
	}
	cres, err := crashpoint.Explore(wl, crashpoint.Options{Points: 1, Workers: 1, Torn: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range cres.Outcomes {
		verdict := "fsck: consistent"
		if !o.Consistent {
			verdict = fmt.Sprintf("fsck: %d violation(s)", len(o.Violations))
		}
		fmt.Printf("   crash after write %d of %d (torn=%v): %d repairs, %s\n",
			o.Point, cres.Writes, o.Torn, o.Repairs.Total(), verdict)
	}

	// 5. Fragment and compact.
	fmt.Println("-- compacting scavenger --")
	before := timeSequentialRead(sys, "report-2.txt")
	frag(sys)
	scattered := timeSequentialRead(sys, "frag-a.dat")
	crep, err := sys.Compact()
	if err != nil {
		log.Fatal(err)
	}
	after := timeSequentialRead(sys, "frag-a.dat")
	fmt.Printf("   %s\n", crep)
	fmt.Printf("   sequential read: %.2f ms/page scattered, %.2f ms/page compacted (%.1fx)\n",
		scattered, after, scattered/after)
	_ = before
}

// pageReads verifies a file's first page still reads under its true name.
func pageReads(f *file.File) bool {
	var buf [disk.PageWords]disk.Word
	_, err := f.ReadPage(1, &buf)
	return err == nil
}

// frag interleaves the growth of twelve files so each file's consecutive
// pages land a full disk revolution apart — the worst-case scatter that
// grows naturally when many files are extended together.
func frag(sys *altoos.System) {
	files := make([]*file.File, 12)
	for i := range files {
		f, err := sys.CreateFile(fmt.Sprintf("frag-%c.dat", 'a'+i))
		if err != nil {
			log.Fatal(err)
		}
		files[i] = f
	}
	var page [disk.PageWords]disk.Word
	for pn := 1; pn <= 16; pn++ {
		for _, f := range files {
			if err := f.WritePage(disk.Word(pn), &page, disk.PageBytes); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, f := range files {
		if err := f.Sync(); err != nil {
			log.Fatal(err)
		}
	}
}

// timeSequentialRead reports simulated milliseconds per page for a full
// sequential read.
func timeSequentialRead(sys *altoos.System, name string) float64 {
	fn, err := dir.ResolveName(sys.FS, name)
	if err != nil {
		log.Fatal(err)
	}
	f, err := sys.FS.Open(fn)
	if err != nil {
		log.Fatal(err)
	}
	lastPN := f.LastPN()
	start := sys.Clock.Now()
	var buf [disk.PageWords]disk.Word
	for pn := disk.Word(1); pn <= lastPN; pn++ {
		if _, err := f.ReadPage(pn, &buf); err != nil {
			log.Fatal(err)
		}
	}
	return float64(sys.Clock.Now()-start) / 1e6 / float64(lastPN)
}
