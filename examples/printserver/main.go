// Print server: the §4 activity-switching scenario. "A printing server, a
// program that accepts files from a local communications network and prints
// them. The program is divided into two tasks: a spooler that reads files
// from the network and queues them in a disk file, and a printer that
// removes entries from the queue and controls the hardware that prints
// them."
//
// Two simulated Altos share the 3 Mb/s ether — and the ether is lossy: the
// fault medium drops, duplicates and corrupts packets, so the documents ride
// the reliable transport (one connection, one message per document) instead
// of bare packets. The server machine alternates between its two activities
// exactly as the paper describes: whenever the printer detects incoming
// traffic it stops and yields to the spooler; whenever the spooler is idle
// but the queue is not empty it yields to the printer. The queue is a disk
// file, so a crash between activities loses nothing the Scavenger can't
// account for. The fault counters printed at the end prove the wire really
// misbehaved and every document still printed intact.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"altoos"
)

const (
	clientAddr = 1
	serverAddr = 2
)

func main() {
	// The client machine with a few documents on its disk.
	client, err := altoos.New(altoos.Config{Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	docs := []string{
		"Memo: label checks make wild writes fail.",
		"Draft: hints may be wrong; absolutes never.",
		"Note: the Scavenger adopts orphans by leader name.",
	}
	for i, text := range docs {
		w, err := client.CreateStream(fmt.Sprintf("doc%d.txt", i))
		if err != nil {
			log.Fatal(err)
		}
		if err := altoos.PutString(w, text); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// Both machines share the network and the virtual clock, so wire time,
	// disk time and print time interleave consistently — and the wire is
	// deliberately bad: a quarter of all deliveries vanish.
	net := altoos.NewNetwork(client.Clock)
	faults := net.InjectFaults(altoos.FaultConfig{
		Seed:    4,
		Drop:    altoos.FaultRate{Num: 1, Den: 4},
		Dup:     altoos.FaultRate{Num: 1, Den: 20},
		Corrupt: altoos.FaultRate{Num: 1, Den: 20},
	})
	cst, err := net.Attach(clientAddr)
	if err != nil {
		log.Fatal(err)
	}
	sst, err := net.Attach(serverAddr)
	if err != nil {
		log.Fatal(err)
	}

	srvDrive, err := altoos.NewDrive(altoos.Diablo31(), 2, client.Clock)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := altoos.Format(srvDrive); err != nil {
		log.Fatal(err)
	}
	srv, err := altoos.New(altoos.Config{Display: os.Stdout, Drive: srvDrive})
	if err != nil {
		log.Fatal(err)
	}

	// One reliable connection carries every document; the transport's
	// sequence numbers and retransmission timers absorb the wire's faults.
	cep := altoos.NewEndpoint(cst, altoos.TransportConfig{Seed: 1})
	sep := altoos.NewEndpoint(sst, altoos.TransportConfig{Seed: 2})
	sep.Listen()
	conn, err := cep.Dial(serverAddr)
	if err != nil {
		log.Fatal(err)
	}

	// Client: read each document from disk and queue it on the connection.
	// The congestion window opens from two packets as acks arrive, so the
	// client polls both machines until Avail reports room before queueing.
	for i := range docs {
		r, err := client.OpenStream(fmt.Sprintf("doc%d.txt", i), altoos.ReadMode)
		if err != nil {
			log.Fatal(err)
		}
		body, err := altoos.ReadAllStream(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		for conn.Avail() == 0 {
			cep.Poll()
			sep.Poll()
		}
		if err := conn.Send(packString(string(body))); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client: sent doc%d (%d bytes)\n", i, len(body))
	}

	// Server: the two activities share the machine, switching §4-style.
	ps := &printServer{sys: srv, station: sst, ep: sep, want: len(docs)}
	if err := ps.run(cep, conn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network carried %s; simulated time %v\n",
		netStats(net), srv.Clock.Now().Round(1000))
	fs := faults.Stats()
	fmt.Printf("faults survived: %d dropped, %d duplicated, %d corrupted of %d deliveries — every document printed intact\n",
		fs.Dropped, fs.Dupped, fs.Corrupted, fs.Judged)
}

// printServer holds the two activities and the disk queue between them.
type printServer struct {
	sys     *altoos.System
	station *altoos.Station
	ep      *altoos.Endpoint
	conns   []*altoos.Conn
	queued  int
	printed int
	want    int
}

// run alternates the activities until every document is printed and the
// client's connection has closed cleanly. The control transfers mirror the
// paper's save/restore structure: each activity runs to a natural stopping
// point and hands over the machine. The client endpoint is polled in the
// same loop — the two machines share one simulated processor room, and the
// retransmissions that repair the lossy wire need the client's timers.
func (p *printServer) run(client *altoos.Endpoint, conn *altoos.Conn) error {
	closed := false
	for spins := 0; spins < 1_000_000; spins++ {
		// Spooler activity: drain the network into the disk queue.
		moved, err := p.spool()
		if err != nil {
			return err
		}
		if moved > 0 {
			fmt.Printf("server: spooler queued %d document(s), yielding to printer\n", moved)
		}
		// Client machine's turn: acks, retransmissions, and — once every
		// document is provably delivered — the close handshake.
		if _, err := client.Poll(); err != nil {
			return err
		}
		if err := conn.Err(); err != nil {
			return err
		}
		if !closed && conn.Unacked() == 0 {
			if err := conn.Close(); err != nil {
				return err
			}
			closed = true
		}
		// Printer activity: print from the queue, but stop the moment new
		// traffic arrives, "to respond quickly to incoming files".
		if _, err := p.print(); err != nil {
			return err
		}
		if closed && conn.State() == altoos.ConnClosed && p.printed == p.want {
			fmt.Printf("server: done — %d queued, %d printed\n", p.queued, p.printed)
			return nil
		}
	}
	return errors.New("print server never drained")
}

// spool polls the transport and writes arriving documents into numbered
// queue files on the server's disk.
func (p *printServer) spool() (int, error) {
	if _, err := p.ep.Poll(); err != nil {
		return 0, err
	}
	for {
		c, ok := p.ep.Accept()
		if !ok {
			break
		}
		p.conns = append(p.conns, c)
	}
	moved := 0
	for _, c := range p.conns {
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			text, err := unpackString(msg)
			if err != nil {
				return moved, err
			}
			name := fmt.Sprintf("spool%03d.q", p.queued)
			w, err := p.sys.CreateStream(name)
			if err != nil {
				return moved, err
			}
			if err := altoos.PutString(w, text); err != nil {
				return moved, err
			}
			if err := w.Close(); err != nil {
				return moved, err
			}
			p.queued++
			moved++
		}
	}
	return moved, nil
}

// print takes the next queue file, "prints" it (to the display stream), and
// deletes it — unless network traffic is pending, in which case it yields
// immediately.
func (p *printServer) print() (int, error) {
	printed := 0
	for p.printed < p.queued {
		if p.station.Pending() > 0 {
			fmt.Println("server: printer yields to incoming traffic")
			return printed, nil
		}
		name := fmt.Sprintf("spool%03d.q", p.printed)
		r, err := p.sys.OpenStream(name, altoos.ReadMode)
		if err != nil {
			return printed, err
		}
		body, err := altoos.ReadAllStream(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return printed, err
		}
		fmt.Printf("PRINT | %s\n", body)
		// Dequeue: remove the name and the file.
		root, err := p.sys.Root()
		if err != nil {
			return printed, err
		}
		f, err := p.sys.OpenByName(name)
		if err != nil {
			return printed, err
		}
		if err := f.Delete(); err != nil {
			return printed, err
		}
		if err := root.Remove(name); err != nil {
			return printed, err
		}
		p.printed++
		printed++
	}
	return printed, nil
}

// packString/unpackString are the standardized wire string representation.
func packString(s string) []uint16 {
	out := make([]uint16, 1+(len(s)+1)/2)
	out[0] = uint16(len(s))
	for i := 0; i < len(s); i++ {
		if i%2 == 0 {
			out[1+i/2] |= uint16(s[i]) << 8
		} else {
			out[1+i/2] |= uint16(s[i])
		}
	}
	return out
}

func unpackString(w []uint16) (string, error) {
	if len(w) == 0 {
		return "", errors.New("empty payload")
	}
	n := int(w[0])
	if 1+(n+1)/2 > len(w) {
		return "", errors.New("truncated")
	}
	b := make([]byte, n)
	for i := range b {
		word := w[1+i/2]
		if i%2 == 0 {
			b[i] = byte(word >> 8)
		} else {
			b[i] = byte(word)
		}
	}
	return string(b), nil
}

func netStats(n *altoos.Network) string {
	pkts, words := n.Stats()
	return fmt.Sprintf("%d packets (%d words)", pkts, words)
}
