// Debugger: the §4 debugging scenario end to end. A buggy program hits a
// breakpoint; the whole machine is written to the Swatee file; the debugger
// examines and repairs the *file* (never the live machine); resuming
// restores the repaired state and the program finishes correctly. "The
// original program and the debugger thus operate as coroutines."
package main

import (
	"fmt"
	"log"
	"os"

	"altoos"
	"altoos/internal/asm"
	"altoos/internal/exec"
)

// The bug: TAX should be rate*amount but the programmer loaded the wrong
// cell, so the program prints '?' instead of '!'.
const buggySource = `
START:	LDA 0, GREET
	SYS 1           ; print 'p' (for "pay")
CALC:	LDA 0, WRONG    ; BUG: should be LDA 0, RIGHT
	SYS 1
	HALT
GREET:	.word 'p'
WRONG:	.word '?'
RIGHT:	.word '!'
`

func main() {
	sys, err := altoos.New(altoos.Config{Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(buggySource)
	if err != nil {
		log.Fatal(err)
	}
	if err := exec.WriteCodeFile(sys.OS, "payroll.run", prog, nil); err != nil {
		log.Fatal(err)
	}

	// Run once to see the bug.
	fmt.Print("first run (buggy): ")
	if _, err := sys.Loader.RunProgram(sys.CPU, "payroll.run", 10000); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Set a breakpoint at CALC and run again: the machine stops, pickled.
	entry, err := sys.Loader.Load("payroll.run")
	if err != nil {
		log.Fatal(err)
	}
	sys.Debugger.SetBreak(prog.Symbols["CALC"])
	sys.CPU.Reset(entry)
	if _, err := sys.CPU.Run(10000); err != nil {
		log.Fatal(err)
	}
	if !sys.OS.TookBreakpoint() {
		log.Fatal("breakpoint did not fire")
	}
	fmt.Println("\n-- breakpoint hit; machine written to Swatee. --")

	// A debugger session over type-ahead: inspect, patch the instruction in
	// the state file (LDA 0, RIGHT instead of LDA 0, WRONG), resume.
	calc := prog.Symbols["CALC"]
	fixed := asm.MustAssemble(fmt.Sprintf(".org %#x\nLDA 0, %#x\n", calc, prog.Symbols["RIGHT"]))
	sys.TypeAhead(fmt.Sprintf("r\ne %#x 3\nd %#x %#x\ng\nq\n", calc, calc, fixed.Words[0]))
	if err := sys.Debugger.REPL(sys.Keyboard, sys.OS.Display); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated time: %v (each breakpoint writes a full machine state)\n",
		sys.Clock.Now().Round(1000))
}
