// Junta: a program takes over the machine (§5.2). It asks the system to
// remove every service level above the disk streams, uses the freed memory
// for its own allocator, runs with its own facilities — and then
// CounterJunta restores the standard system, good as new.
//
// "A programmer desiring even more flexibility is encouraged to remove most
// of the system with Junta and to incorporate copies of the standard
// packages in his own program, placed wherever he wants."
package main

import (
	"fmt"
	"log"
	"os"

	"altoos"
	"altoos/internal/junta"
	"altoos/internal/stream"
)

func main() {
	sys, err := altoos.New(altoos.Config{Display: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("the thirteen levels (§5.2), top of memory first:")
	for _, e := range sys.Levels.Table() {
		fmt.Printf("  %2d  %-32s %-18s %5d words\n", int(e.Level), e.Name, e.Region, e.Words)
	}

	// Seed a file with the standard system, to prove it survives the coup.
	w, err := sys.CreateStream("constitution.txt")
	if err != nil {
		log.Fatal(err)
	}
	if err := altoos.PutString(w, "the labels are the law\n"); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// The coup: keep levels 1..8 (through disk streams), remove
	// directories, keyboard/display streams, the loader and the system free
	// storage. Their memory belongs to the program now.
	freed, words, err := sys.Levels.Do(junta.LevelDiskStream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njunta kept levels 1..%d and freed %d words at %v\n",
		int(sys.Levels.Retained()), words, freed)

	// The program brings its own allocator, built over the liberated
	// region — the same zone package, different storage, which is the
	// openness point: the system's own packages work standalone.
	size := freed.Size()
	if size > 0x7FFF {
		size = 0x7FFF
	}
	myZone, err := altoos.NewZone(sys.Mem, freed.Start, size)
	if err != nil {
		log.Fatal(err)
	}

	// Disk streams still work (level 8 was retained) — but with the
	// program's zone supplying the working storage, since the system zone
	// is gone.
	f, err := sys.OpenByName("constitution.txt")
	if err != nil {
		log.Fatal(err)
	}
	r, err := stream.NewDisk(f, myZone, sys.Mem, stream.ReadMode)
	if err != nil {
		log.Fatal(err)
	}
	body, err := stream.ReadAll(r)
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read through the program's own zone: %q\n", string(body))
	fmt.Printf("program zone stats: %+v\n", myZone.Stats())

	// The counter-revolution: restore every level. The system free storage
	// is rebuilt, and the standard facilities work again.
	if err := sys.Levels.CounterJunta(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncounter-junta: levels restored through %d\n", int(sys.Levels.Retained()))
	w2, err := sys.CreateStream("restored.txt")
	if err != nil {
		log.Fatal(err)
	}
	altoos.PutString(w2, "the standard system is back")
	if err := w2.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("standard streams working again; simulated time", sys.Clock.Now().Round(1000))
}
